package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// Replacement selects which half of the Dekker-like synchronization in the
// work-stealing queue is replaced by an RMW, mirroring the paper's C/C++11
// experiment (wsq-mst_rr and wsq-mst_wr).
type Replacement int

const (
	// NoReplacement uses an RMW only where the original algorithm has one
	// (the steal CAS and node-claim CAS).
	NoReplacement Replacement = iota
	// ReadReplacement turns the pop's SC-atomic-read of top into an RMW
	// (lock xadd(0)), the paper's wsq-mst_rr.
	ReadReplacement
	// WriteReplacement turns the pop's SC-atomic-write of bottom into an
	// RMW (lock xchg), the paper's wsq-mst_wr.
	WriteReplacement
)

// String renders the replacement variant.
func (r Replacement) String() string {
	switch r {
	case NoReplacement:
		return "none"
	case ReadReplacement:
		return "read-replacement"
	case WriteReplacement:
		return "write-replacement"
	default:
		return fmt.Sprintf("Replacement(%d)", int(r))
	}
}

// Memory layout of the synthetic address space (byte addresses; the
// simulator converts to 64-byte lines). Each region is padded so distinct
// logical objects live on distinct lines.
const (
	lineBytes        = 64
	lockRegionBase   = 0x1000_0000 // synchronization variables (lock words, deque tops, STM locks)
	sharedRegionBase = 0x2000_0000 // shared data
	dequeRegionBase  = 0x3000_0000 // per-core deque anchors (top/bottom)
	privateBase      = 0x4000_0000 // per-core private data
	privateStride    = 0x0100_0000
)

// lockAddr returns the byte address of the i-th synchronization variable.
func lockAddr(i int) uint64 { return lockRegionBase + uint64(i)*lineBytes }

// sharedAddr returns the byte address of the i-th shared data line.
func sharedAddr(i int) uint64 { return sharedRegionBase + uint64(i)*lineBytes }

// dequeTopAddr and dequeBottomAddr return the anchors of core c's deque.
func dequeTopAddr(c int) uint64    { return dequeRegionBase + uint64(c)*4*lineBytes }
func dequeBottomAddr(c int) uint64 { return dequeRegionBase + uint64(c)*4*lineBytes + 2*lineBytes }

// privateAddr returns the byte address of core c's i-th private line.
func privateAddr(c, i int) uint64 {
	return privateBase + uint64(c)*privateStride + uint64(i)*lineBytes
}

// emitFn receives generated operations in program order. It is the sink
// shared by the streaming and materializing generation paths: a core
// stream's refill buffer appends through it, and Generate drains a stream
// built on the same episode functions, so the two forms produce identical
// op sequences by construction.
type emitFn func(ops ...sim.Op)

// Generator produces simulator traces from benchmark profiles, either
// fully materialized (Generate) or as lazy per-core streams (Source) that
// synthesize operations one synchronization episode at a time.
type Generator struct {
	// Cores is the number of cores to generate streams for.
	Cores int
	// Seed makes generation deterministic.
	Seed int64
	// Replacement applies to work-stealing profiles only.
	Replacement Replacement
}

// TraceName returns the name the generator gives traces of the profile:
// the profile name plus the replacement-variant suffix ("_rr"/"_wr").
func (g Generator) TraceName(p Profile) string {
	switch g.Replacement {
	case ReadReplacement:
		return p.Name + "_rr"
	case WriteReplacement:
		return p.Name + "_wr"
	default:
		return p.Name
	}
}

// episodeFunc emits the operations of one synchronization episode (one
// lock acquisition, transaction, or deque pop/execute/push round) of core
// c. Generation is deterministic in the rng, which each core stream seeds
// identically to the materializing path.
type episodeFunc func(g Generator, c int, p Profile, rng *rand.Rand, emit emitFn)

// episode returns the profile's per-episode generation function.
func (g Generator) episode(p Profile) (episodeFunc, error) {
	switch p.Pattern {
	case LockBased:
		return Generator.lockBasedEpisode, nil
	case Transactional:
		return Generator.transactionalEpisode, nil
	case WorkStealing:
		return Generator.workStealingEpisode, nil
	default:
		return nil, fmt.Errorf("workload: profile %q: unknown pattern %v", p.Name, p.Pattern)
	}
}

// validate checks the (generator, profile) pair before any generation.
func (g Generator) validate(p Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if g.Cores <= 0 {
		return fmt.Errorf("workload: non-positive core count %d", g.Cores)
	}
	return nil
}

// Generate builds the fully materialized trace for a profile. It is a thin
// wrapper over Source: the lazy per-core streams are drained into slices.
// Prefer passing the Source itself to the simulator when the ops need not
// be retained — the result is identical and memory stays O(episode) per
// core instead of O(trace).
func (g Generator) Generate(p Profile) (*sim.Trace, error) {
	src, err := g.Source(p)
	if err != nil {
		return nil, err
	}
	return sim.Materialize(src), nil
}

// privatePhase emits the non-shared work between synchronization episodes.
func (g Generator) privatePhase(emit emitFn, c int, p Profile, rng *rand.Rand) {
	if p.ThinkCycles > 0 {
		emit(sim.Compute(p.ThinkCycles))
	}
	for i := 0; i < p.PrivateOpsPerEpisode; i++ {
		addr := privateAddr(c, rng.Intn(64))
		if rng.Float64() < p.WriteFraction {
			emit(sim.Write(addr))
		} else {
			emit(sim.Read(addr))
		}
	}
}

// pickSync picks a synchronization variable index for core c. With
// probability LockAffinity the index comes from the core's own partition of
// the pool (real programs partition their work, so most acquisitions are
// uncontended); otherwise it is drawn uniformly, providing the cross-core
// sharing that exercises the coherence protocol.
func (g Generator) pickSync(c int, p Profile, rng *rand.Rand) int {
	pool := p.SharedLockLines
	if p.LockAffinity > 0 && rng.Float64() < p.LockAffinity && g.Cores > 0 {
		per := pool / g.Cores
		if per < 1 {
			per = 1
		}
		base := (c * per) % pool
		return (base + rng.Intn(per)) % pool
	}
	return rng.Intn(pool)
}

// sharedOps emits n accesses to the shared-data pool, writing with the
// profile's write fraction.
func (g Generator) sharedOps(emit emitFn, c int, p Profile, rng *rand.Rand, n int) {
	for i := 0; i < n; i++ {
		addr := sharedAddr(rng.Intn(p.SharedDataLines))
		if rng.Float64() < p.WriteFraction {
			emit(sim.Write(addr))
		} else {
			emit(sim.Read(addr))
		}
	}
}

// lockBasedEpisode models one iteration of SPLASH-2/PARSEC style code:
// private work, a couple of shared-buffer writes, then lock; critical
// section; unlock. The shared writes just before the acquire are what make
// the baseline type-1 RMW pay for a write-buffer drain, as the paper
// observes.
func (g Generator) lockBasedEpisode(c int, p Profile, rng *rand.Rand, emit emitFn) {
	g.privatePhase(emit, c, p, rng)
	// Publish a couple of results to shared memory right before the
	// acquire.
	g.sharedOps(emit, c, p, rng, 2)
	lock := lockAddr(g.pickSync(c, p, rng))
	emit(sim.RMW(lock)) // acquire (test-and-set)
	g.sharedOps(emit, c, p, rng, p.CriticalSectionOps)
	emit(sim.Write(lock)) // release
}

// transactionalEpisode models one transaction of STAMP code running on a
// TL2-style STM: a read phase, then a commit that locks each written
// location with an RMW, bumps the global version clock with an RMW, writes
// back, and releases the locks with plain stores.
func (g Generator) transactionalEpisode(c int, p Profile, rng *rand.Rand, emit emitFn) {
	// The version clock is the hot line every commit bumps. TL2's GV5/GV6
	// variants reduce clock contention; ClockLines > 1 models that by
	// sharding the clock, with each core mostly using its home shard.
	clockShards := p.ClockLines
	if clockShards <= 0 {
		clockShards = 1
	}
	clockRegion := p.SharedLockLines // clock shards live after the STM locks
	g.privatePhase(emit, c, p, rng)
	// Read set.
	g.sharedOps(emit, c, p, rng, p.CriticalSectionOps)
	// Write set: lock each written location (CAS on its STM lock), then
	// bump the version clock, write back, release. The short compute
	// gaps model the per-location and read-set validation TL2 performs
	// between the lock acquisitions; they also give the lock RMWs'
	// writes time to leave the write buffer, which is why the paper
	// measures almost no bloom-filter reverts for the STAMP codes.
	writeSet := 1 + rng.Intn(2)
	locks := make([]uint64, 0, writeSet)
	for w := 0; w < writeSet; w++ {
		l := lockAddr(g.pickSync(c, p, rng))
		locks = append(locks, l)
		emit(sim.RMW(l), sim.Compute(30))
	}
	clock := lockAddr(clockRegion + c%clockShards)
	emit(sim.Compute(60), sim.RMW(clock))
	for w := 0; w < writeSet; w++ {
		emit(sim.Write(sharedAddr(rng.Intn(p.SharedDataLines))))
	}
	for _, l := range locks {
		emit(sim.Write(l))
	}
}

// workStealingEpisode models one round of the Chase-Lev deque plus the
// node-claiming CAS of the parallel spanning-tree program (wsq-mst): pop a
// task (the Dekker-like bottom/top synchronization whose SC accesses the
// paper's C/C++11 experiment replaces with RMWs), execute it (claiming a
// graph node with a CAS and touching its neighbours), push newly
// discovered work, and occasionally steal from a victim deque. The task
// execution between the push and the next pop is what lets the push's
// plain write of bottom leave the write buffer before the pop's RMW, as it
// does in the real program.
func (g Generator) workStealingEpisode(c int, p Profile, rng *rand.Rand, emit emitFn) {
	// Publish the previous task's results just before taking the next
	// task; these are the pending writes that make the baseline type-1
	// RMW pay for a drain at the pop.
	g.sharedOps(emit, c, p, rng, 2)

	// Pop a task: the Dekker-like sequence "write bottom; read top".
	switch g.Replacement {
	case WriteReplacement:
		emit(sim.RMW(dequeBottomAddr(c))) // SC-atomic-write -> lock xchg
		emit(sim.Read(dequeTopAddr(c)))
	case ReadReplacement:
		emit(sim.Write(dequeBottomAddr(c)))
		emit(sim.RMW(dequeTopAddr(c))) // SC-atomic-read -> lock xadd(0)
	default:
		emit(sim.Write(dequeBottomAddr(c)))
		emit(sim.Read(dequeTopAddr(c)))
		// Occasionally the pop races a thief and resolves it with a CAS
		// on top.
		if rng.Float64() < 0.2 {
			emit(sim.RMW(dequeTopAddr(c)))
		}
	}

	// Execute the task: claim a graph node with a CAS, then touch its
	// neighbours. The large node pool is what gives wsq-mst its high
	// fraction of unique RMW addresses.
	node := lockAddr(g.pickSync(c, p, rng))
	emit(sim.RMW(node))
	g.sharedOps(emit, c, p, rng, p.CriticalSectionOps)

	// Push newly discovered work: write the task slot, then publish
	// bottom.
	emit(sim.Write(sharedAddr(rng.Intn(p.SharedDataLines))))
	emit(sim.Write(dequeBottomAddr(c)))

	// Occasionally steal from a victim deque: read its anchors and CAS
	// its top.
	if g.Cores > 1 && rng.Float64() < 0.25 {
		victim := rng.Intn(g.Cores)
		if victim == c {
			victim = (victim + 1) % g.Cores
		}
		emit(sim.Read(dequeTopAddr(victim)))
		emit(sim.Read(dequeBottomAddr(victim)))
		emit(sim.RMW(dequeTopAddr(victim)))
	}

	// Local bookkeeping before the next pop; this is where the push's
	// write of bottom drains.
	g.privatePhase(emit, c, p, rng)
}

// GenerateByName builds the materialized trace for a Table 3 benchmark by
// name; the streaming equivalent is SourceByName.
func (g Generator) GenerateByName(name string) (*sim.Trace, error) {
	p, err := FindProfile(name)
	if err != nil {
		return nil, err
	}
	return g.Generate(p)
}

// WSQProfile returns the wsq-mst profile, the benchmark used for the
// C/C++11 read-/write-replacement comparison.
func WSQProfile() Profile {
	p, err := FindProfile("wsq-mst")
	if err != nil {
		// Table3Profiles always contains wsq-mst; reaching this is a
		// programming error.
		panic(err)
	}
	return p
}
