// Package workload generates the memory-operation traces that drive the
// simulator. The paper evaluates on SPLASH-2, PARSEC and STAMP benchmarks
// plus a lock-free work-stealing program; those binaries (and the GEM5 x86
// frontend that would execute them) are not available here, so each
// benchmark is replaced by a synthetic profile calibrated to the
// characteristics the paper reports in Table 3 -- RMW density, fraction of
// unique RMW addresses and synchronization structure -- together with
// faithful trace-level models of the synchronization constructs that
// actually exercise RMWs: test-and-set and ticket spinlocks, a Chase-Lev
// work-stealing deque (wsq-mst) and a TL2-style software transactional
// memory (bayes, genome). See DESIGN.md for the substitution argument.
package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
)

// Pattern names the synchronization structure a profile uses.
type Pattern int

const (
	// LockBased models SPLASH-2/PARSEC style code: RMWs come from
	// lock/unlock pairs around short critical sections.
	LockBased Pattern = iota
	// Transactional models STAMP/TL2 style code: RMWs lock written
	// locations at commit time and a commit counter.
	Transactional
	// WorkStealing models the Chase-Lev deque of wsq-mst: owner pops use
	// Dekker-like synchronization, steals use CAS.
	WorkStealing
)

// String renders the pattern name.
func (p Pattern) String() string {
	switch p {
	case LockBased:
		return "lock-based"
	case Transactional:
		return "transactional"
	case WorkStealing:
		return "work-stealing"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Profile describes one benchmark: the paper's reported characteristics
// (used for reporting and calibration checks) and the parameters of the
// synthetic trace generator.
type Profile struct {
	// Name and Suite identify the benchmark (Table 3's first two columns).
	Name  string
	Suite string
	// ProblemSize is the input the paper used, for documentation.
	ProblemSize string
	// Pattern is the synchronization structure.
	Pattern Pattern

	// PaperRMWsPer1000 and PaperUniquePct are the values the paper reports
	// in Table 3 (RMWs per 1000 memory operations; percentage of RMWs to
	// unique addresses). The generator is calibrated against them.
	PaperRMWsPer1000 float64
	PaperUniquePct   float64

	// Iterations is the number of synchronization episodes each core
	// executes (lock acquisitions, transactions, or deque operations).
	Iterations int
	// CriticalSectionOps is the number of shared-data accesses per episode.
	CriticalSectionOps int
	// PrivateOpsPerEpisode is the number of private (core-local) memory
	// operations between episodes; together with CriticalSectionOps it sets
	// the RMW density.
	PrivateOpsPerEpisode int
	// ThinkCycles is the non-memory work between episodes.
	ThinkCycles uint64
	// SharedLockLines is the size of the pool of synchronization variables
	// (lock words, deque anchors, transaction locks); a larger pool raises
	// the unique-RMW fraction.
	SharedLockLines int
	// SharedDataLines is the pool of shared data accessed inside critical
	// sections or transactions.
	SharedDataLines int
	// WriteFraction is the fraction of non-RMW memory operations that are
	// writes.
	WriteFraction float64
	// LockAffinity is the probability that a core picks its
	// synchronization variable from its own partition of the pool rather
	// than uniformly; real programs partition work, so most acquisitions
	// are uncontended while a fraction still migrates between cores.
	LockAffinity float64
	// ClockLines shards the transactional global version clock (the GV5/6
	// style optimizations of TL2); only used by Transactional profiles.
	// Zero means a single global clock line.
	ClockLines int
}

// Validate checks the profile's generator parameters.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile without a name")
	case p.Iterations <= 0:
		return fmt.Errorf("workload: profile %q: non-positive iterations", p.Name)
	case p.SharedLockLines <= 0:
		return fmt.Errorf("workload: profile %q: no synchronization variables", p.Name)
	case p.SharedDataLines <= 0:
		return fmt.Errorf("workload: profile %q: no shared data", p.Name)
	case p.WriteFraction < 0 || p.WriteFraction > 1:
		return fmt.Errorf("workload: profile %q: write fraction %.2f out of range", p.Name, p.WriteFraction)
	case p.LockAffinity < 0 || p.LockAffinity > 1:
		return fmt.Errorf("workload: profile %q: lock affinity %.2f out of range", p.Name, p.LockAffinity)
	case p.ClockLines < 0:
		return fmt.Errorf("workload: profile %q: negative clock shard count", p.Name)
	}
	return nil
}

// Digest returns a stable content digest of the profile: the hex-encoded
// SHA-256 of an explicit name=value serialization of every field. Result
// caches fold it into their keys so two distinct profiles sharing a name
// (for example a hand-tuned copy of a Table 3 benchmark) can never alias
// to the same cached run. Each field is written by name in a fixed order;
// a new Profile field must be added here (the per-field sensitivity test
// in profile_test.go fails loudly until it is).
func (p Profile) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "workload.Profile/v1\n")
	fmt.Fprintf(h, "Name=%s\n", p.Name)
	fmt.Fprintf(h, "Suite=%s\n", p.Suite)
	fmt.Fprintf(h, "ProblemSize=%s\n", p.ProblemSize)
	fmt.Fprintf(h, "Pattern=%d\n", int(p.Pattern))
	fmt.Fprintf(h, "PaperRMWsPer1000=%s\n", strconv.FormatFloat(p.PaperRMWsPer1000, 'g', -1, 64))
	fmt.Fprintf(h, "PaperUniquePct=%s\n", strconv.FormatFloat(p.PaperUniquePct, 'g', -1, 64))
	fmt.Fprintf(h, "Iterations=%d\n", p.Iterations)
	fmt.Fprintf(h, "CriticalSectionOps=%d\n", p.CriticalSectionOps)
	fmt.Fprintf(h, "PrivateOpsPerEpisode=%d\n", p.PrivateOpsPerEpisode)
	fmt.Fprintf(h, "ThinkCycles=%d\n", p.ThinkCycles)
	fmt.Fprintf(h, "SharedLockLines=%d\n", p.SharedLockLines)
	fmt.Fprintf(h, "SharedDataLines=%d\n", p.SharedDataLines)
	fmt.Fprintf(h, "WriteFraction=%s\n", strconv.FormatFloat(p.WriteFraction, 'g', -1, 64))
	fmt.Fprintf(h, "LockAffinity=%s\n", strconv.FormatFloat(p.LockAffinity, 'g', -1, 64))
	fmt.Fprintf(h, "ClockLines=%d\n", p.ClockLines)
	return hex.EncodeToString(h.Sum(nil))
}

// Table3Profiles returns the benchmark set of the paper's Table 3, in table
// order. The generator parameters are chosen so the measured RMW density
// and unique-RMW fraction land close to the paper's reported values; the
// calibration is checked by the workload tests and reported by the Table 3
// experiment.
func Table3Profiles() []Profile {
	return []Profile{
		{
			Name: "radiosity", Suite: "SPLASH-2", ProblemSize: "room", Pattern: LockBased,
			PaperRMWsPer1000: 15.56, PaperUniquePct: 0.28,
			Iterations: 320, CriticalSectionOps: 6, PrivateOpsPerEpisode: 54,
			ThinkCycles: 1000, SharedLockLines: 64, SharedDataLines: 256, WriteFraction: 0.3,
			LockAffinity: 0.85,
		},
		{
			Name: "raytrace", Suite: "SPLASH-2", ProblemSize: "car", Pattern: LockBased,
			PaperRMWsPer1000: 13.83, PaperUniquePct: 0.02,
			Iterations: 320, CriticalSectionOps: 4, PrivateOpsPerEpisode: 64,
			ThinkCycles: 2600, SharedLockLines: 48, SharedDataLines: 128, WriteFraction: 0.25,
			LockAffinity: 0.9,
		},
		{
			Name: "fluidanimate", Suite: "PARSEC", ProblemSize: "simmedium", Pattern: LockBased,
			PaperRMWsPer1000: 17.43, PaperUniquePct: 0.46,
			Iterations: 320, CriticalSectionOps: 5, PrivateOpsPerEpisode: 48,
			ThinkCycles: 900, SharedLockLines: 64, SharedDataLines: 256, WriteFraction: 0.35,
			LockAffinity: 0.85,
		},
		{
			Name: "dedup", Suite: "PARSEC", ProblemSize: "simmedium", Pattern: LockBased,
			PaperRMWsPer1000: 8.10, PaperUniquePct: 3.31,
			Iterations: 200, CriticalSectionOps: 6, PrivateOpsPerEpisode: 113,
			ThinkCycles: 2600, SharedLockLines: 160, SharedDataLines: 512, WriteFraction: 0.3,
			LockAffinity: 0.85,
		},
		{
			Name: "bayes", Suite: "STAMP", ProblemSize: "bayes+", Pattern: Transactional,
			PaperRMWsPer1000: 34.15, PaperUniquePct: 0.91,
			Iterations: 280, CriticalSectionOps: 6, PrivateOpsPerEpisode: 62,
			ThinkCycles: 400, SharedLockLines: 96, SharedDataLines: 512, WriteFraction: 0.4,
			LockAffinity: 0.8, ClockLines: 8,
		},
		{
			Name: "genome", Suite: "STAMP", ProblemSize: "genome+", Pattern: Transactional,
			PaperRMWsPer1000: 6.19, PaperUniquePct: 0.64,
			Iterations: 80, CriticalSectionOps: 4, PrivateOpsPerEpisode: 394,
			ThinkCycles: 1400, SharedLockLines: 48, SharedDataLines: 512, WriteFraction: 0.35,
			LockAffinity: 0.8, ClockLines: 8,
		},
		{
			Name: "wsq-mst", Suite: "Lockfree", ProblemSize: "10000 nodes", Pattern: WorkStealing,
			PaperRMWsPer1000: 23.41, PaperUniquePct: 3.80,
			Iterations: 360, CriticalSectionOps: 3, PrivateOpsPerEpisode: 53,
			ThinkCycles: 220, SharedLockLines: 256, SharedDataLines: 512, WriteFraction: 0.35,
			LockAffinity: 0.9,
		},
	}
}

// FindProfile returns the Table 3 profile with the given name, or an error.
func FindProfile(name string) (Profile, error) {
	for _, p := range Table3Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// ProfileNames returns the Table 3 benchmark names in table order.
func ProfileNames() []string {
	profiles := Table3Profiles()
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.Name
	}
	return out
}
