package workload

import (
	"reflect"
	"testing"
)

// TestProfileDigestCoversEveryField perturbs each Profile field in turn
// via reflection and asserts the digest changes, so a field added to
// Profile but not to Digest breaks loudly instead of letting two
// different workloads alias in a result cache.
func TestProfileDigestCoversEveryField(t *testing.T) {
	base := WSQProfile()
	baseDigest := base.Digest()
	typ := reflect.TypeOf(base)
	for i := 0; i < typ.NumField(); i++ {
		p := base
		v := reflect.ValueOf(&p).Elem().Field(i)
		switch v.Kind() {
		case reflect.String:
			v.SetString(v.String() + "x")
		case reflect.Int:
			v.SetInt(v.Int() + 1)
		case reflect.Uint64:
			v.SetUint(v.Uint() + 1)
		case reflect.Float64:
			v.SetFloat(v.Float() + 0.125)
		default:
			t.Fatalf("Profile field %s has unhandled kind %s: extend Digest and this test", typ.Field(i).Name, v.Kind())
		}
		if p.Digest() == baseDigest {
			t.Errorf("perturbing Profile.%s did not change the digest: add it to Profile.Digest", typ.Field(i).Name)
		}
	}
}

// TestWorkloadDigestDistinguishesVariants pins that the source-level
// digest separates replacement variants and profile edits even though
// cores and seed live in separate cache-key fields.
func TestWorkloadDigestDistinguishesVariants(t *testing.T) {
	p := WSQProfile()
	gen := Generator{Cores: 4, Seed: 1}
	plain, err := gen.Source(p)
	if err != nil {
		t.Fatalf("Source: %v", err)
	}
	gen.Replacement = ReadReplacement
	rr, err := gen.Source(p)
	if err != nil {
		t.Fatalf("Source: %v", err)
	}
	if plain.WorkloadDigest() == rr.WorkloadDigest() {
		t.Fatalf("replacement variant not reflected in the workload digest")
	}
	edited := p
	edited.CriticalSectionOps++
	gen.Replacement = NoReplacement
	tweaked, err := gen.Source(edited)
	if err != nil {
		t.Fatalf("Source: %v", err)
	}
	if tweaked.WorkloadDigest() == plain.WorkloadDigest() {
		t.Fatalf("edited profile kept the stock workload digest: cache entries would alias")
	}
}
