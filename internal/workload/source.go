package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// Source is the lazy form of a generated benchmark trace: it implements
// sim.TraceSource by synthesizing each core's operations one
// synchronization episode at a time, on demand. Where Generate holds the
// whole O(cores × iterations × ops-per-episode) trace in memory, a Source
// stream keeps only the current episode's ops buffered — O(window) per
// core, independent of how long the workload runs.
//
// Stream returns a fresh, independent iterator on every call (each stream
// owns its rng, seeded exactly as the materializing path seeds it), so one
// Source can feed several simulation runs concurrently — the pattern the
// Runner's per-RMW-type sweeps use — and every stream of the same core
// yields the identical op sequence.
type Source struct {
	name    string
	gen     Generator
	profile Profile
	episode episodeFunc
}

// Source returns the lazy per-core trace source for a profile. It
// validates the (generator, profile) pair up front; generation work only
// happens as the returned source's streams are consumed.
func (g Generator) Source(p Profile) (*Source, error) {
	if err := g.validate(p); err != nil {
		return nil, err
	}
	ep, err := g.episode(p)
	if err != nil {
		return nil, err
	}
	return &Source{name: g.TraceName(p), gen: g, profile: p, episode: ep}, nil
}

// SourceByName returns the lazy trace source for a Table 3 benchmark by
// name; the materializing equivalent is GenerateByName.
func (g Generator) SourceByName(name string) (*Source, error) {
	p, err := FindProfile(name)
	if err != nil {
		return nil, err
	}
	return g.Source(p)
}

// Name returns the trace name (profile name plus replacement suffix).
func (s *Source) Name() string { return s.name }

// WorkloadDigest identifies the generated workload's content beyond its
// name: the digest of the profile's generator parameters plus the
// replacement variant. Result caches fold it into their keys so a
// hand-modified profile that kept a benchmark's name can never alias to
// the stock benchmark's cached runs (cores and seed are separate key
// fields already).
func (s *Source) WorkloadDigest() string {
	return fmt.Sprintf("%s|replace=%d", s.profile.Digest(), int(s.gen.Replacement))
}

// Cores returns the number of per-core streams.
func (s *Source) Cores() int { return s.gen.Cores }

// Profile returns the profile the source generates.
func (s *Source) Profile() Profile { return s.profile }

// Stream returns a fresh iterator over core c's operations. Each call
// creates an independent stream with its own deterministic rng, so streams
// may be consumed concurrently and re-created to replay the same core.
func (s *Source) Stream(c int) sim.OpStream {
	cs := &coreStream{
		src:  s,
		core: c,
		// One rng per core, seeded exactly as Generate's per-core loop
		// seeds it, keeps the streamed and materialized forms
		// byte-identical.
		rng: rand.New(rand.NewSource(s.gen.Seed + int64(c)*7919 + 1)),
	}
	// Build the emit closure once per stream, not per refill, so the
	// steady-state refill loop allocates only what the episode function
	// itself allocates.
	cs.emit = func(ops ...sim.Op) { cs.buf = append(cs.buf, ops...) }
	return cs
}

// coreStream generates one core's operations episode by episode. Only the
// current episode is buffered; the buffer is reused across refills, so
// after warm-up a stream allocates nothing per episode beyond what the
// episode function itself allocates.
type coreStream struct {
	src  *Source
	core int
	rng  *rand.Rand
	emit emitFn

	// it counts completed episodes; buf/pos hold the current episode's
	// not-yet-consumed ops.
	it  int
	buf []sim.Op
	pos int

	// maxWindow records the high-water mark of the episode buffer, the
	// quantity the O(window) memory-bound tests assert on.
	maxWindow int
}

// Next returns the core's next operation, refilling the episode buffer
// when the previous episode is exhausted.
func (cs *coreStream) Next() (sim.Op, bool) {
	for cs.pos >= len(cs.buf) {
		if cs.it >= cs.src.profile.Iterations {
			return sim.Op{}, false
		}
		cs.buf = cs.buf[:0]
		cs.pos = 0
		cs.src.episode(cs.src.gen, cs.core, cs.src.profile, cs.rng, cs.emit)
		cs.it++
		if len(cs.buf) > cs.maxWindow {
			cs.maxWindow = len(cs.buf)
		}
	}
	op := cs.buf[cs.pos]
	cs.pos++
	return op, true
}
