package workload

import (
	"testing"

	"repro/internal/sim"
)

// drain consumes a stream into a slice.
func drain(t *testing.T, s sim.OpStream) []sim.Op {
	t.Helper()
	var ops []sim.Op
	for {
		op, ok := s.Next()
		if !ok {
			// A well-behaved stream keeps reporting exhaustion.
			if _, again := s.Next(); again {
				t.Fatal("stream yielded an op after reporting exhaustion")
			}
			return ops
		}
		ops = append(ops, op)
	}
}

// TestSourceMatchesGenerate asserts the tentpole identity: the lazy
// per-core streams yield exactly the op sequences Generate materializes,
// for every Table 3 profile and replacement variant.
func TestSourceMatchesGenerate(t *testing.T) {
	variants := []Replacement{NoReplacement, ReadReplacement, WriteReplacement}
	for _, p := range Table3Profiles() {
		p.Iterations = 24 // keep the cross-product quick
		for _, v := range variants {
			if v != NoReplacement && p.Pattern != WorkStealing {
				continue
			}
			g := Generator{Cores: 4, Seed: 99, Replacement: v}
			trace, err := g.Generate(p)
			if err != nil {
				t.Fatal(err)
			}
			src, err := g.Source(p)
			if err != nil {
				t.Fatal(err)
			}
			if src.Name() != trace.Name {
				t.Fatalf("%s/%v: source name %q != trace name %q", p.Name, v, src.Name(), trace.Name)
			}
			if src.Cores() != trace.Cores() {
				t.Fatalf("%s/%v: source cores %d != trace cores %d", p.Name, v, src.Cores(), trace.Cores())
			}
			for c := 0; c < src.Cores(); c++ {
				ops := drain(t, src.Stream(c))
				if len(ops) != len(trace.PerCore[c]) {
					t.Fatalf("%s/%v core %d: streamed %d ops, materialized %d",
						p.Name, v, c, len(ops), len(trace.PerCore[c]))
				}
				for i := range ops {
					if ops[i] != trace.PerCore[c][i] {
						t.Fatalf("%s/%v core %d op %d: streamed %+v != materialized %+v",
							p.Name, v, c, i, ops[i], trace.PerCore[c][i])
					}
				}
			}
		}
	}
}

// TestSourceStreamsIndependent asserts Stream returns fresh, replayable
// iterators: two streams of the same core yield identical sequences, and
// consuming one does not advance the other.
func TestSourceStreamsIndependent(t *testing.T) {
	g := Generator{Cores: 2, Seed: 5}
	p := Table3Profiles()[0]
	p.Iterations = 16
	src, err := g.Source(p)
	if err != nil {
		t.Fatal(err)
	}
	a := src.Stream(1)
	// Partially consume a third stream first; it must not perturb a or b.
	spoiler := src.Stream(1)
	for i := 0; i < 10; i++ {
		spoiler.Next()
	}
	b := src.Stream(1)
	opsA := drain(t, a)
	opsB := drain(t, b)
	if len(opsA) != len(opsB) {
		t.Fatalf("replayed stream has %d ops, first had %d", len(opsB), len(opsA))
	}
	for i := range opsA {
		if opsA[i] != opsB[i] {
			t.Fatalf("op %d differs between streams of the same core", i)
		}
	}
}

// TestStreamWindowBounded asserts the O(window) memory claim: the episode
// buffer's high-water mark stays below an analytic per-episode bound that
// depends only on the profile's episode shape — never on the iteration
// count — and far below the total trace length.
func TestStreamWindowBounded(t *testing.T) {
	for _, p := range Table3Profiles() {
		p.Iterations = 400
		g := Generator{Cores: 2, Seed: 17}
		src, err := g.Source(p)
		if err != nil {
			t.Fatal(err)
		}
		cs := src.Stream(0).(*coreStream)
		total := 0
		for {
			if _, ok := cs.Next(); !ok {
				break
			}
			total++
		}
		// The longest possible episode of any pattern: the private phase
		// (one compute plus PrivateOpsPerEpisode), the critical-section /
		// read-set accesses, and a small constant of synchronization ops
		// (locks, clock bump, pop/push/steal accesses — at most 16 across
		// all three patterns).
		bound := 1 + p.PrivateOpsPerEpisode + p.CriticalSectionOps + 16
		if cs.maxWindow > bound {
			t.Errorf("%s: buffer high-water mark %d exceeds the per-episode bound %d",
				p.Name, cs.maxWindow, bound)
		}
		if cs.maxWindow*4 >= total {
			t.Errorf("%s: window %d is not small relative to the %d-op trace", p.Name, cs.maxWindow, total)
		}
	}
}

// TestSourceErrors mirrors Generate's validation on the lazy path.
func TestSourceErrors(t *testing.T) {
	if _, err := (Generator{Cores: 0, Seed: 1}).Source(Table3Profiles()[0]); err == nil {
		t.Error("zero cores must fail")
	}
	if _, err := (Generator{Cores: 2, Seed: 1}).Source(Profile{}); err == nil {
		t.Error("invalid profile must fail")
	}
	bad := Table3Profiles()[0]
	bad.Pattern = Pattern(42)
	if _, err := (Generator{Cores: 2, Seed: 1}).Source(bad); err == nil {
		t.Error("unknown pattern must fail")
	}
	if _, err := (Generator{Cores: 2, Seed: 1}).SourceByName("nope"); err == nil {
		t.Error("unknown name must fail")
	}
	src, err := (Generator{Cores: 2, Seed: 1}).SourceByName("genome")
	if err != nil {
		t.Fatalf("SourceByName(genome): %v", err)
	}
	if src.Profile().Name != "genome" {
		t.Errorf("source profile = %q", src.Profile().Name)
	}
}

// TestTraceNameSuffixes checks the shared naming rule of both trace forms.
func TestTraceNameSuffixes(t *testing.T) {
	p := WSQProfile()
	cases := []struct {
		r    Replacement
		want string
	}{
		{NoReplacement, "wsq-mst"},
		{ReadReplacement, "wsq-mst_rr"},
		{WriteReplacement, "wsq-mst_wr"},
	}
	for _, c := range cases {
		if got := (Generator{Cores: 1, Replacement: c.r}).TraceName(p); got != c.want {
			t.Errorf("TraceName with %v = %q, want %q", c.r, got, c.want)
		}
	}
}
