package workload

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestPatternAndReplacementStrings(t *testing.T) {
	if LockBased.String() != "lock-based" || Transactional.String() != "transactional" || WorkStealing.String() != "work-stealing" {
		t.Error("pattern names wrong")
	}
	if Pattern(9).String() == "" {
		t.Error("unknown pattern should render")
	}
	if NoReplacement.String() != "none" || ReadReplacement.String() != "read-replacement" || WriteReplacement.String() != "write-replacement" {
		t.Error("replacement names wrong")
	}
	if Replacement(9).String() == "" {
		t.Error("unknown replacement should render")
	}
}

func TestTable3ProfilesWellFormed(t *testing.T) {
	profiles := Table3Profiles()
	if len(profiles) != 7 {
		t.Fatalf("Table 3 has 7 benchmarks, got %d", len(profiles))
	}
	wantOrder := []string{"radiosity", "raytrace", "fluidanimate", "dedup", "bayes", "genome", "wsq-mst"}
	for i, p := range profiles {
		if p.Name != wantOrder[i] {
			t.Errorf("profile %d = %q, want %q", i, p.Name, wantOrder[i])
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.PaperRMWsPer1000 <= 0 || p.PaperUniquePct <= 0 {
			t.Errorf("%s: missing paper reference values", p.Name)
		}
	}
	if names := ProfileNames(); len(names) != 7 || names[0] != "radiosity" {
		t.Errorf("ProfileNames = %v", names)
	}
}

func TestFindProfile(t *testing.T) {
	p, err := FindProfile("bayes")
	if err != nil || p.Suite != "STAMP" {
		t.Errorf("FindProfile(bayes) = %+v, %v", p, err)
	}
	if _, err := FindProfile("nonesuch"); err == nil {
		t.Error("unknown benchmark must not be found")
	}
	if WSQProfile().Name != "wsq-mst" {
		t.Error("WSQProfile wrong")
	}
}

func TestProfileValidate(t *testing.T) {
	good := Table3Profiles()[0]
	bad := []func(Profile) Profile{
		func(p Profile) Profile { p.Name = ""; return p },
		func(p Profile) Profile { p.Iterations = 0; return p },
		func(p Profile) Profile { p.SharedLockLines = 0; return p },
		func(p Profile) Profile { p.SharedDataLines = 0; return p },
		func(p Profile) Profile { p.WriteFraction = 1.5; return p },
	}
	for i, mutate := range bad {
		if err := mutate(good).Validate(); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := Generator{Cores: 4, Seed: 42}
	p := Table3Profiles()[0]
	t1, err := g.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := g.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if t1.TotalOps() != t2.TotalOps() {
		t.Fatal("generation is not deterministic in size")
	}
	for c := range t1.PerCore {
		for i := range t1.PerCore[c] {
			if t1.PerCore[c][i] != t2.PerCore[c][i] {
				t.Fatalf("core %d op %d differs between runs", c, i)
			}
		}
	}
	// A different seed must produce a different stream.
	t3, err := Generator{Cores: 4, Seed: 43}.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range t1.PerCore[0] {
		if i >= len(t3.PerCore[0]) || t1.PerCore[0][i] != t3.PerCore[0][i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := (Generator{Cores: 0, Seed: 1}).Generate(Table3Profiles()[0]); err == nil {
		t.Error("zero cores must fail")
	}
	if _, err := (Generator{Cores: 2, Seed: 1}).Generate(Profile{}); err == nil {
		t.Error("invalid profile must fail")
	}
	if _, err := (Generator{Cores: 2, Seed: 1}).GenerateByName("nope"); err == nil {
		t.Error("unknown name must fail")
	}
	if _, err := (Generator{Cores: 2, Seed: 1}).GenerateByName("genome"); err != nil {
		t.Errorf("GenerateByName(genome): %v", err)
	}
}

// TestGeneratedDensitiesTrackTable3 checks the calibration: the structural
// RMW density of each generated trace must be within a factor of two of the
// paper's Table 3 value (the qualitative ordering is what the experiments
// rely on).
func TestGeneratedDensitiesTrackTable3(t *testing.T) {
	g := Generator{Cores: 8, Seed: 7}
	for _, p := range Table3Profiles() {
		trace, err := g.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		memops := trace.MemOps()
		rmws := trace.CountKind(sim.OpRMW)
		if memops == 0 || rmws == 0 {
			t.Fatalf("%s: empty trace", p.Name)
		}
		density := 1000 * float64(rmws) / float64(memops)
		ratio := density / p.PaperRMWsPer1000
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("%s: generated RMW density %.2f per 1000 memops vs paper %.2f (ratio %.2f)",
				p.Name, density, p.PaperRMWsPer1000, ratio)
		}
	}
}

// TestGeneratedDensityOrderingMatchesPaper checks that the relative
// ordering of RMW densities across benchmarks follows Table 3 (bayes >
// wsq-mst > fluidanimate > radiosity > raytrace > dedup > genome).
func TestGeneratedDensityOrderingMatchesPaper(t *testing.T) {
	g := Generator{Cores: 8, Seed: 11}
	density := map[string]float64{}
	for _, p := range Table3Profiles() {
		trace, err := g.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		density[p.Name] = 1000 * float64(trace.CountKind(sim.OpRMW)) / float64(trace.MemOps())
	}
	order := []string{"bayes", "wsq-mst", "fluidanimate", "radiosity", "raytrace", "dedup", "genome"}
	for i := 0; i+1 < len(order); i++ {
		if density[order[i]] <= density[order[i+1]] {
			t.Errorf("density(%s)=%.2f should exceed density(%s)=%.2f (Table 3 ordering)",
				order[i], density[order[i]], order[i+1], density[order[i+1]])
		}
	}
}

// TestUniqueRMWFractionRoughlyTracksTable3 checks the unique-address
// calibration within loose bounds: dedup and wsq-mst must have markedly
// more unique RMW lines than raytrace.
func TestUniqueRMWFractionRoughlyTracksTable3(t *testing.T) {
	g := Generator{Cores: 8, Seed: 13}
	uniquePct := map[string]float64{}
	for _, p := range Table3Profiles() {
		trace, err := g.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		rmws := trace.CountKind(sim.OpRMW)
		uniquePct[p.Name] = 100 * float64(trace.UniqueRMWLines(lineBytes)) / float64(rmws)
	}
	if uniquePct["dedup"] <= uniquePct["raytrace"] {
		t.Errorf("dedup unique%% (%.2f) should exceed raytrace (%.2f)", uniquePct["dedup"], uniquePct["raytrace"])
	}
	if uniquePct["wsq-mst"] <= uniquePct["radiosity"] {
		t.Errorf("wsq-mst unique%% (%.2f) should exceed radiosity (%.2f)", uniquePct["wsq-mst"], uniquePct["radiosity"])
	}
	for name, pct := range uniquePct {
		if math.IsNaN(pct) || pct <= 0 || pct > 100 {
			t.Errorf("%s: unique%% = %.2f out of range", name, pct)
		}
	}
}

// TestReplacementVariants checks the wsq-mst_rr / wsq-mst_wr traces differ
// only in which half of the pop synchronization is an RMW, and that
// read-replacement has at least as many RMWs as write-replacement (both
// replace one access per pop).
func TestReplacementVariants(t *testing.T) {
	p := WSQProfile()
	base, err := Generator{Cores: 4, Seed: 3}.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Generator{Cores: 4, Seed: 3, Replacement: ReadReplacement}.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	wr, err := Generator{Cores: 4, Seed: 3, Replacement: WriteReplacement}.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Name != "wsq-mst_rr" || wr.Name != "wsq-mst_wr" {
		t.Errorf("variant names = %q, %q", rr.Name, wr.Name)
	}
	if rr.CountKind(sim.OpRMW) <= 0 || wr.CountKind(sim.OpRMW) <= 0 {
		t.Fatal("variants lost their RMWs")
	}
	// Both variants replace exactly one access per pop, so their RMW counts
	// match each other and exceed or equal the baseline's CAS-only count
	// minus the probabilistic conflict CASes.
	if rr.CountKind(sim.OpRMW) != wr.CountKind(sim.OpRMW) {
		t.Errorf("rr RMWs %d != wr RMWs %d", rr.CountKind(sim.OpRMW), wr.CountKind(sim.OpRMW))
	}
	if base.TotalOps() == 0 {
		t.Fatal("baseline empty")
	}
}

// TestGeneratedTracesRunOnSimulator is the end-to-end smoke test: a small
// configuration runs every benchmark under every RMW type without
// deadlocking, and type-2 never loses to type-1.
func TestGeneratedTracesRunOnSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep skipped in -short mode")
	}
	cfg := sim.DefaultConfig().WithCores(4)
	small := Generator{Cores: 4, Seed: 5}
	for _, p := range Table3Profiles() {
		// Shrink the workload for test speed.
		p.Iterations = 40
		trace, err := small.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		results := map[core.AtomicityType]*sim.Result{}
		for _, typ := range core.AllTypes() {
			s, err := sim.New(cfg.WithRMWType(typ))
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run(trace)
			if err != nil {
				t.Fatalf("%s [%s]: %v", p.Name, typ, err)
			}
			results[typ] = res
		}
		t1 := results[core.Type1]
		t2 := results[core.Type2]
		t3 := results[core.Type3]
		for _, r := range []*sim.Result{t1, t2, t3} {
			if r.Deadlocked {
				t.Fatalf("%s [%s]: deadlocked", p.Name, r.RMWType)
			}
			if r.TotalRMWs() == 0 {
				t.Fatalf("%s [%s]: no RMWs executed", p.Name, r.RMWType)
			}
		}
		_, _, c1 := t1.AvgRMWCost()
		_, _, c2 := t2.AvgRMWCost()
		_, _, c3 := t3.AvgRMWCost()
		if c2 > c1 {
			t.Errorf("%s: type-2 RMW cost %.1f exceeds type-1 cost %.1f", p.Name, c2, c1)
		}
		if c3 > c1 {
			t.Errorf("%s: type-3 RMW cost %.1f exceeds type-1 cost %.1f", p.Name, c3, c1)
		}
		if t2.Cycles > t1.Cycles {
			t.Errorf("%s: type-2 execution time %d exceeds type-1 %d", p.Name, t2.Cycles, t1.Cycles)
		}
	}
}
