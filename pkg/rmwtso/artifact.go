package rmwtso

import "repro/internal/engine"

// ShardSchemaVersion versions the plan fingerprint derivation and the
// shard artifact envelope. Bumping it orphans older artifacts (their
// fingerprints can never match a current plan's) instead of misreading
// them.
const ShardSchemaVersion = engine.ShardSchemaVersion

// UnitResult is one finished plan unit inside a shard artifact: the
// unit's identity plus its simulation result.
type UnitResult = engine.UnitResult

// ShardResult is the outcome of running one shard of a plan: the unit
// results, plus the plan fingerprint and shard selector that produced
// them. Written to disk (WriteFile) it becomes the machine-readable
// artifact a fleet ships back for merging.
type ShardResult = engine.ShardResult

// DecodeShard parses and verifies an encoded shard artifact.
func DecodeShard(data []byte) (*ShardResult, error) { return engine.DecodeShard(data) }

// ReadShardFile reads and verifies one shard artifact file.
func ReadShardFile(path string) (*ShardResult, error) { return engine.ReadShardFile(path) }

// MergeShards reassembles the complete sweep from shard results: every
// shard must carry the plan's fingerprint, every plan unit must appear
// exactly once across the shards, and no shard may carry a unit the plan
// does not know. The reconstructed runs are in plan order and deeply
// equal to an unsharded RunPlan's — so a report built from them encodes
// byte-identically.
func MergeShards(plan *Plan, shards ...*ShardResult) ([]*BenchmarkRun, error) {
	return engine.MergeShards(plan, shards...)
}

// MergeShardFiles reads, verifies and merges shard artifact files.
func MergeShardFiles(plan *Plan, paths ...string) ([]*BenchmarkRun, error) {
	return engine.MergeShardFiles(plan, paths...)
}
