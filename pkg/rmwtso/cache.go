package rmwtso

import (
	"repro/internal/engine"
	"repro/internal/simcache"
)

// Cache is the two-tier, content-addressed result cache: an in-memory LRU
// in front of an optional on-disk tier (one versioned, checksummed JSON
// file per entry). Simulator runs and litmus verdicts are pure functions
// of their inputs, so a cache hit replays the stored result instead of
// recomputing it — warm `cmd/experiments` reruns produce byte-identical
// tables while executing zero simulator runs for cached keys. Corrupt or
// stale disk entries are detected, deleted and treated as misses. A Cache
// is safe for concurrent use by a Runner's worker pool.
type Cache = simcache.Cache

// CacheKey identifies one cached result by the inputs that determine it:
// entry kind, configuration digest, trace or test name, cores, seed,
// scale and RMW type, all folded into one canonical digest.
type CacheKey = simcache.Key

// CacheStats are a Cache's cumulative hit/miss/store/corruption counters.
type CacheStats = simcache.Stats

// CacheOption configures OpenCache.
type CacheOption = simcache.Option

// CacheSchemaVersion versions the cache key derivation and entry layout;
// it participates in every key, so bumping it orphans older entries
// rather than misinterpreting them.
const CacheSchemaVersion = simcache.SchemaVersion

// OpenCache builds a result cache. With no options the cache is
// memory-only; add CacheDir (typically over DefaultCacheDir's location)
// to persist entries across processes.
func OpenCache(opts ...CacheOption) (*Cache, error) { return simcache.Open(opts...) }

// CacheDir roots the cache's disk tier at dir (created if missing); the
// empty string keeps the cache memory-only.
func CacheDir(dir string) CacheOption { return simcache.WithDir(dir) }

// CacheCapacity bounds the in-memory tier to n entries with LRU
// eviction; n <= 0 removes the bound.
func CacheCapacity(n int) CacheOption { return simcache.WithCapacity(n) }

// DefaultCacheDir returns the conventional on-disk cache location
// (~/.cache/rmwtso on Linux), the directory the binaries' -cache flag
// uses when -cache-dir is not given.
func DefaultCacheDir() (string, error) { return simcache.DefaultDir() }

// OpenCacheFromFlags implements the caching flag contract shared by the
// three binaries: -cache-dir and -cache-clear imply -cache, an empty dir
// falls back to DefaultCacheDir, and clear empties the directory before
// use. It returns a nil cache (and no error) when caching was not
// requested, so callers can pass the flags through unconditionally.
func OpenCacheFromFlags(enabled bool, dir string, clear bool) (*Cache, error) {
	if !enabled && dir == "" && !clear {
		return nil, nil
	}
	if dir == "" {
		var err error
		if dir, err = DefaultCacheDir(); err != nil {
			return nil, err
		}
	}
	c, err := OpenCache(CacheDir(dir))
	if err != nil {
		return nil, err
	}
	if clear {
		if err := c.Clear(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// SimCacheKey derives the content-addressed key of one simulator run
// from the run's effective configuration (RMW type already set), the
// trace source, and the workload seed and scale (non-positive scale
// normalizes to 1). Generator-built sources additionally contribute a
// digest of their profile parameters, so a hand-tuned profile sharing a
// benchmark's name never aliases the stock entries. Two runs with equal
// keys produce identical results.
func SimCacheKey(cfg SimConfig, src TraceSource, seed int64, scale float64) CacheKey {
	return simcache.SimKey(cfg, src, seed, scale)
}

// LitmusCacheKey derives the key of one litmus verdict from the canonical
// textual rendering of the test (program, condition and expectations) and
// the atomicity type checked.
func LitmusCacheKey(t *Test, typ AtomicityType) CacheKey {
	return engine.LitmusVerdictKey(t, typ)
}

// SimulateSourceCached is SimulateSource through a cache: on a hit the
// stored result is returned (hit == true) without running the simulator;
// on a miss the run executes and its result is stored best-effort. A nil
// cache degrades to plain SimulateSource. The configuration is validated
// before any key is digested. Deadlocked runs (the Fig. 10 demo) are
// never stored and never served: they represent a failure mode the
// experiment harness must keep rejecting identically on warm and cold
// runs, so they always re-execute.
func SimulateSourceCached(c *Cache, cfg SimConfig, src TraceSource, seed int64, scale float64) (*SimResult, bool, error) {
	if c == nil {
		res, err := SimulateSource(cfg, src)
		return res, false, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, false, err
	}
	key := SimCacheKey(cfg, src, seed, scale)
	if res, ok := c.GetSim(key); ok && !res.Deadlocked {
		return res, true, nil
	}
	res, err := SimulateSource(cfg, src)
	if err != nil {
		return nil, false, err
	}
	if !res.Deadlocked {
		_ = c.PutSim(key, res)
	}
	return res, false, nil
}
