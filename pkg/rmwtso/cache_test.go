package rmwtso_test

import (
	"reflect"
	"sync/atomic"
	"testing"

	"repro/pkg/rmwtso"
)

// tinyOptions keep the cached sweeps fast (4 cores, 10% scale).
func tinyOptions(cache *rmwtso.Cache) rmwtso.Options {
	return rmwtso.Options{Cores: 4, Scale: 0.1, Seed: 20130601, Cache: cache}
}

// TestRunnerBenchmarkCacheObserver is the acceptance check of the cache:
// a second RunBenchmarks over the same cache serves every unit as a
// CacheHit event — zero simulator runs — and returns deeply equal runs.
func TestRunnerBenchmarkCacheObserver(t *testing.T) {
	cache, err := rmwtso.OpenCache(rmwtso.CacheDir(t.TempDir()))
	if err != nil {
		t.Fatalf("OpenCache: %v", err)
	}
	specs := rmwtso.Table3Specs()[:2]
	units := 0
	for _, s := range specs {
		units += len(s.Types)
	}

	var events, hits atomic.Int64
	observer := func(e rmwtso.Event) {
		if e.Sim == nil {
			return
		}
		events.Add(1)
		if e.Sim.CacheHit {
			hits.Add(1)
		}
	}
	runner := rmwtso.NewRunner(rmwtso.WithObserver(observer), rmwtso.WithCache(cache))

	cold, err := runner.RunBenchmarks(tinyOptions(nil), specs)
	if err != nil {
		t.Fatalf("cold RunBenchmarks: %v", err)
	}
	if got := hits.Load(); got != 0 {
		t.Fatalf("cold run streamed %d cache hits, want 0", got)
	}
	if got := events.Load(); got != int64(units) {
		t.Fatalf("cold run streamed %d sim events, want %d", got, units)
	}

	events.Store(0)
	hits.Store(0)
	warm, err := runner.RunBenchmarks(tinyOptions(nil), specs)
	if err != nil {
		t.Fatalf("warm RunBenchmarks: %v", err)
	}
	if got := hits.Load(); got != int64(units) {
		t.Fatalf("warm run streamed %d cache hits, want %d (zero simulator runs)", got, units)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm runs differ from cold runs")
	}
	if st := cache.Stats(); st.Hits() != uint64(units) || st.Misses != uint64(units) {
		t.Fatalf("cache stats = %+v, want %d hits and %d misses", st, units, units)
	}
}

// TestOptionsCachePlumbing checks the Options.Cache route (no Runner
// option): the second sweep must hit.
func TestOptionsCachePlumbing(t *testing.T) {
	cache, err := rmwtso.OpenCache() // memory-only
	if err != nil {
		t.Fatalf("OpenCache: %v", err)
	}
	runner := rmwtso.NewRunner()
	specs := rmwtso.Table3Specs()[:1]
	if _, err := runner.RunBenchmarks(tinyOptions(cache), specs); err != nil {
		t.Fatalf("cold: %v", err)
	}
	if _, err := runner.RunBenchmarks(tinyOptions(cache), specs); err != nil {
		t.Fatalf("warm: %v", err)
	}
	st := cache.Stats()
	if st.MemoryHits != uint64(len(specs[0].Types)) {
		t.Fatalf("stats = %+v, want %d memory hits via Options.Cache", st, len(specs[0].Types))
	}
}

// TestSweepSourceCached covers the rmwsim-style sweep: the second sweep
// over the same source replays all three per-type runs from the cache.
func TestSweepSourceCached(t *testing.T) {
	cache, err := rmwtso.OpenCache()
	if err != nil {
		t.Fatalf("OpenCache: %v", err)
	}
	profile, err := rmwtso.FindProfile("raytrace")
	if err != nil {
		t.Fatalf("FindProfile: %v", err)
	}
	profile.Iterations = 16
	gen := rmwtso.Generator{Cores: 4, Seed: 7}
	src, err := gen.Source(profile)
	if err != nil {
		t.Fatalf("Source: %v", err)
	}
	cfg := rmwtso.DefaultSimConfig().WithCores(4)

	runner := rmwtso.NewRunner(rmwtso.WithCache(cache))
	cold, err := runner.SweepSourceCached(cfg, src, 7, 1)
	if err != nil {
		t.Fatalf("cold sweep: %v", err)
	}
	warm, err := runner.SweepSourceCached(cfg, src, 7, 1)
	if err != nil {
		t.Fatalf("warm sweep: %v", err)
	}
	if len(warm) != len(cold) {
		t.Fatalf("sweep sizes differ")
	}
	for i := range warm {
		if !warm[i].CacheHit {
			t.Errorf("warm run %s not served from cache", warm[i].Type)
		}
		if !reflect.DeepEqual(warm[i].Result, cold[i].Result) {
			t.Errorf("warm result for %s differs", warm[i].Type)
		}
	}
	// A different seed must miss: the key includes the workload identity.
	reseed, err := runner.SweepSourceCached(cfg, src, 8, 1)
	if err != nil {
		t.Fatalf("reseeded sweep: %v", err)
	}
	for _, r := range reseed {
		if r.CacheHit {
			t.Errorf("different seed hit the cache for %s", r.Type)
		}
	}
}

// TestLitmusVerdictCache runs a slice of the registered suite twice
// through a caching Runner and asserts the second pass replays identical
// verdicts flagged CacheHit.
func TestLitmusVerdictCache(t *testing.T) {
	cache, err := rmwtso.OpenCache(rmwtso.CacheDir(t.TempDir()))
	if err != nil {
		t.Fatalf("OpenCache: %v", err)
	}
	tests := rmwtso.Suite().Tests()[:3]
	runner := rmwtso.NewRunner(rmwtso.WithCache(cache))

	cold, err := runner.CheckTests(tests...)
	if err != nil {
		t.Fatalf("cold CheckTests: %v", err)
	}
	for _, r := range cold {
		if r.CacheHit {
			t.Fatalf("cold verdict for %s/%s flagged as cache hit", r.Test.Name, r.Atomicity)
		}
	}
	warm, err := runner.CheckTests(tests...)
	if err != nil {
		t.Fatalf("warm CheckTests: %v", err)
	}
	if len(warm) != len(cold) {
		t.Fatalf("verdict counts differ")
	}
	for i := range warm {
		c, w := cold[i], warm[i]
		if !w.CacheHit {
			t.Errorf("warm verdict for %s/%s not served from cache", w.Test.Name, w.Atomicity)
		}
		if w.Holds != c.Holds || w.Matches != c.Matches ||
			w.ValidExecutions != c.ValidExecutions || w.Candidates != c.Candidates {
			t.Errorf("warm verdict for %s/%s differs: %+v vs %+v", w.Test.Name, w.Atomicity, w, c)
		}
		if !w.Outcomes.Equal(c.Outcomes) {
			t.Errorf("warm outcome set for %s/%s differs:\n%v\nvs\n%v",
				w.Test.Name, w.Atomicity, w.Outcomes.Keys(), c.Outcomes.Keys())
		}
	}
	// And the rendered report — what the litmus binary prints — must be
	// identical modulo the hit flag (which the report does not show).
	if rmwtso.RenderLitmusResults(cold) != rmwtso.RenderLitmusResults(warm) {
		t.Errorf("cached report rendering differs")
	}
}

// TestSimulateSourceCached covers the single-run helper used by rmwsim.
func TestSimulateSourceCached(t *testing.T) {
	cache, err := rmwtso.OpenCache()
	if err != nil {
		t.Fatalf("OpenCache: %v", err)
	}
	trace := rmwtso.Fig10Trace(4)
	cfg := rmwtso.DefaultSimConfig().WithCores(4)

	cold, hit, err := rmwtso.SimulateSourceCached(cache, cfg, trace.Source(), 1, 1)
	if err != nil || hit {
		t.Fatalf("cold run: hit=%v err=%v", hit, err)
	}
	warm, hit, err := rmwtso.SimulateSourceCached(cache, cfg, trace.Source(), 1, 1)
	if err != nil || !hit {
		t.Fatalf("warm run: hit=%v err=%v", hit, err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("cached result differs")
	}
	// Invalid configurations must be rejected before any key is digested.
	bad := cfg
	bad.Cores = 0
	if _, _, err := rmwtso.SimulateSourceCached(cache, bad, trace.Source(), 1, 1); err == nil {
		t.Fatalf("invalid config accepted")
	}
}
