package rmwtso

import (
	"repro/internal/chaos"
)

// ChaosEnv is the environment variable that arms the seeded
// fault-injection layer in a process built from this module (see
// InstallChaosFromEnv). Its value is a JSON chaos spec: a seed plus a
// list of rules naming a hook (artifact writes, cache reads, the
// coordinator client's lease/heartbeat/ack paths), a fault kind (delay,
// bit-flip, ENOSPC, kill-at-byte-N) and firing bounds. The simulation
// harness sets it on the worker processes its scenarios script; it has
// no place in production runs.
const ChaosEnv = chaos.Env

// ChaosKillExitCode is the exit status of a process dying to an injected
// kill: 137, matching a real SIGKILL.
const ChaosKillExitCode = chaos.KillExitCode

// InstallChaosFromEnv arms fault injection from the ChaosEnv environment
// variable, returning a one-line description of the armed injector for
// the caller's startup banner, or "" when the variable is unset. An
// unparsable or invalid spec is an error: a chaos run that silently ran
// clean would defeat the scenario asserting on its faults.
func InstallChaosFromEnv() (string, error) {
	in, ok, err := chaos.FromEnv()
	if err != nil {
		return "", err
	}
	if !ok {
		return "", nil
	}
	chaos.Install(in)
	return "chaos armed: " + in.String(), nil
}
