package rmwtso

import (
	"context"

	"repro/internal/engine"
	"repro/internal/experiments"
)

// Coordination summarizes how a dynamically coordinated sweep executed:
// per-worker unit counts, retry/expiry churn and the dead-lettered units.
type Coordination = experiments.Coordination

// CoordWorker is one worker's traffic in a coordinated sweep.
type CoordWorker = experiments.CoordWorker

// DeadUnit is one unit that exhausted its attempt budget.
type DeadUnit = experiments.DeadUnit

// ErrInjectedCrash is the error a FaultInjector returns to simulate a
// worker death: the worker abandons its current lease without acking or
// nacking and stops, so the unit is recovered through lease expiry
// exactly like a real crash. A worker loop (in-process or RunPlanWorker)
// that crashed this way reports ErrInjectedCrash from its Run.
var ErrInjectedCrash = engine.ErrInjectedCrash

// CoordEvent is one coordination state transition of a dynamic sweep,
// streamed through the Runner's observer alongside the sweep's SimRun
// events so progress displays can show leases, requeues and dead letters
// as they happen.
type CoordEvent = engine.CoordEvent

// FaultInjector decides, before each unit execution of a coordinated
// sweep, whether to inject a fault: return nil to execute normally, a
// plain error to fail the attempt (nacked, retried, eventually
// dead-lettered), or ErrInjectedCrash to kill the worker mid-lease.
// Fault injection exists for tests, demos and CI crash drills.
type FaultInjector = engine.FaultInjector

// CoordinationConfig tunes a coordinated sweep (WithCoordinator). The
// zero value picks the noted defaults.
type CoordinationConfig = engine.CoordinationConfig

// WithCoordinator switches the Runner's RunPlan to dynamic coordination:
// instead of the static per-worker split, the shard's units go into a
// pull queue and workers lease them one at a time under heartbeat-kept
// leases — a crashed worker's unit is requeued on lease expiry, a
// repeatedly failing unit is retried with backoff and then dead-lettered
// (RunPlan returns a *DeadLetterError carrying the partial results), and
// the completed sweep's results are byte-identical to a static run's.
// The same configuration drives the HTTP mode (NewCoordServer,
// RunPlanWorker) for fleets that span machines.
func WithCoordinator(cfg CoordinationConfig) Option { return engine.WithCoordinator(cfg) }

// DeadLetterError reports a coordinated sweep that completed with
// dead-lettered units: every other unit finished (the queue drained),
// but the listed units failed all their attempts. Partial carries the
// completed units and the coordination summary — including the dead
// letters with their full failure history — so callers can still render
// a partial report (Plan.RunsPartial) with the DLQ section instead of
// discarding the sweep.
type DeadLetterError = engine.DeadLetterError

// CoordServer coordinates one plan shard for HTTP workers on other
// machines: it owns the pull queue, serves the versioned JSON protocol
// (Handler), and assembles the shard result once the fleet drains the
// queue (Wait). Build it from the Runner whose observer should stream
// the sweep's coordination events.
type CoordServer = engine.CoordServer

// NewCoordServer builds the coordination server for the plan units the
// shard selects, configured by the Runner's WithCoordinator (defaults
// apply without it).
func (r *Runner) NewCoordServer(plan *Plan, shard Shard) (*CoordServer, error) {
	return r.eng.NewCoordServer(plan, shard)
}

// RunPlanWorker runs one pull worker against the coordinator at addr
// ("http://host:port") until that sweep's queue drains: the worker
// rebuilds the identical plan locally (the fingerprint handshake refuses
// a mismatched one), leases units one at a time, simulates them through
// the same runUnit path as every other mode, and acks checksummed
// results. It returns nil when the queue drains, ErrInjectedCrash when
// the fault injector killed the worker, or the transport/handshake
// error.
func (r *Runner) RunPlanWorker(ctx context.Context, plan *Plan, addr, name string) error {
	return r.eng.RunPlanWorker(ctx, plan, addr, name)
}
