package rmwtso_test

import (
	"bytes"
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/rmwtso"
)

// coordConfig compresses the coordination timescales for tests while
// keeping the state machine's semantics (outcomes are asserted on state,
// not timing).
func coordConfig() rmwtso.CoordinationConfig {
	return rmwtso.CoordinationConfig{
		Workers:      3,
		LeaseTTL:     200 * time.Millisecond,
		MaxAttempts:  3,
		RetryBackoff: 5 * time.Millisecond,
		MaxBackoff:   20 * time.Millisecond,
		Heartbeat:    20 * time.Millisecond,
	}
}

// staticBaseline runs the plan unsharded on the static pool and returns
// the expected runs, report and encodings.
func staticBaseline(t *testing.T, o rmwtso.Options, plan *rmwtso.Plan) ([]*rmwtso.BenchmarkRun, *rmwtso.Report, map[string][]byte) {
	t.Helper()
	full, err := rmwtso.NewRunner().RunPlan(nil, plan, rmwtso.FullShard())
	if err != nil {
		t.Fatal(err)
	}
	runs, err := plan.Runs(full.Units)
	if err != nil {
		t.Fatal(err)
	}
	report, err := rmwtso.BuildReport(o, runs)
	if err != nil {
		t.Fatal(err)
	}
	return runs, report, encodeAll(t, report)
}

// checkCoordinatedIdentity asserts the coordinated shard result carries a
// coordination section and that, with the section stripped, its runs and
// report encodings are byte-identical to the static baseline's.
func checkCoordinatedIdentity(t *testing.T, o rmwtso.Options, plan *rmwtso.Plan, res *rmwtso.ShardResult,
	mode string, wantRuns []*rmwtso.BenchmarkRun, wantBytes map[string][]byte) {
	t.Helper()
	if res.Coordination == nil || res.Coordination.Mode != mode {
		t.Fatalf("coordination section %+v, want mode %q", res.Coordination, mode)
	}
	if len(res.Coordination.DeadLetters) != 0 {
		t.Fatalf("completed sweep has dead letters: %+v", res.Coordination.DeadLetters)
	}
	units := 0
	for _, w := range res.Coordination.Workers {
		units += w.Units
	}
	if units != plan.Len() {
		t.Errorf("per-worker unit counts sum to %d, plan has %d", units, plan.Len())
	}
	runs, err := plan.Runs(res.Units)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(runs, wantRuns) {
		t.Fatalf("coordinated runs differ from the static run")
	}
	report, err := rmwtso.BuildReport(o, runs)
	if err != nil {
		t.Fatal(err)
	}
	for format, want := range wantBytes {
		var b bytes.Buffer
		if err := rmwtso.EncodeReport(&b, report, format); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b.Bytes(), want) {
			t.Fatalf("%s encoding of the coordinated report is not byte-identical", format)
		}
	}
}

// TestCoordinatedSweepByteIdentical is the acceptance differential for
// the tentpole: a coordinated in-process sweep with an injected worker
// crash mid-sweep still produces result tables byte-identical to the
// static unsharded run, with the crash visible only in the coordination
// section (lease expiry + requeue).
func TestCoordinatedSweepByteIdentical(t *testing.T) {
	o := shardOptions()
	plan, err := rmwtso.DefaultPlan(o)
	if err != nil {
		t.Fatal(err)
	}
	wantRuns, _, wantBytes := staticBaseline(t, o, plan)

	cfg := coordConfig()
	var crashed atomic.Bool
	cfg.FaultInjector = func(worker string, _ rmwtso.Unit, _ int) error {
		// Whichever worker executes first dies there; the other two finish
		// the sweep. (Naming a fixed victim would be flaky: on a small
		// GOMAXPROCS the first workers can drain the queue before the
		// victim's goroutine is ever scheduled.)
		if crashed.CompareAndSwap(false, true) {
			return rmwtso.ErrInjectedCrash
		}
		return nil
	}
	var mu sync.Mutex
	kinds := map[string]int{}
	runner := rmwtso.NewRunner(
		rmwtso.WithCoordinator(cfg),
		rmwtso.WithObserver(func(e rmwtso.Event) {
			if e.Coord != nil {
				mu.Lock()
				kinds[e.Coord.Kind]++
				mu.Unlock()
			}
		}),
	)
	res, err := runner.RunPlan(nil, plan, rmwtso.FullShard())
	if err != nil {
		t.Fatal(err)
	}
	if !crashed.Load() {
		t.Fatal("fault injector never fired")
	}
	checkCoordinatedIdentity(t, o, plan, res, "in-process", wantRuns, wantBytes)

	if res.Coordination.Expired < 1 {
		t.Errorf("crash left no lease expiry: %+v", res.Coordination)
	}
	mu.Lock()
	defer mu.Unlock()
	if kinds["lease"] < plan.Len() || kinds["ack"] != plan.Len() || kinds["expire"] < 1 || kinds["requeue"] < 1 || kinds["drained"] != 1 {
		t.Errorf("coordination event counts %v", kinds)
	}
}

// TestCoordinatedPoisonDeadLetters drives a permanently failing unit
// through its whole attempt budget: the sweep terminates (no hang), the
// error is a *DeadLetterError naming the unit, the partial result still
// carries every other unit, and RunsPartial reassembles the complete
// groups while listing the missing unit.
func TestCoordinatedPoisonDeadLetters(t *testing.T) {
	o := shardOptions()
	plan, err := rmwtso.DefaultPlan(o)
	if err != nil {
		t.Fatal(err)
	}
	poisoned := plan.Units()[0].ID

	cfg := coordConfig()
	cfg.FaultInjector = func(_ string, u rmwtso.Unit, attempt int) error {
		if u.ID == poisoned {
			return fmt.Errorf("injected poison (attempt %d)", attempt)
		}
		return nil
	}
	runner := rmwtso.NewRunner(rmwtso.WithCoordinator(cfg))
	_, err = runner.RunPlan(nil, plan, rmwtso.FullShard())
	var dle *rmwtso.DeadLetterError
	if !errors.As(err, &dle) {
		t.Fatalf("want *DeadLetterError, got %v", err)
	}
	if !strings.Contains(err.Error(), string(poisoned)) || !strings.Contains(err.Error(), "dead-lettered") {
		t.Errorf("error does not name the poisoned unit: %v", err)
	}

	partial := dle.Partial
	if len(partial.Units) != plan.Len()-1 {
		t.Fatalf("partial has %d units, want %d", len(partial.Units), plan.Len()-1)
	}
	dls := partial.Coordination.DeadLetters
	if len(dls) != 1 || dls[0].Unit != string(poisoned) || dls[0].Attempts != cfg.MaxAttempts {
		t.Fatalf("dead letters %+v", dls)
	}
	if want := fmt.Sprintf("injected poison (attempt %d)", cfg.MaxAttempts); dls[0].Reasons[len(dls[0].Reasons)-1] != want {
		t.Errorf("last reason %q, want %q", dls[0].Reasons[len(dls[0].Reasons)-1], want)
	}

	runs, missing, err := plan.RunsPartial(partial.Units)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 1 || missing[0] != poisoned {
		t.Fatalf("missing %v, want [%s]", missing, poisoned)
	}
	// Exactly the poisoned unit's group is dropped; every complete group
	// survives into the partial report.
	var groups []string
	seen := map[string]bool{}
	for _, u := range plan.Units() {
		if !seen[u.Trace] {
			seen[u.Trace] = true
			groups = append(groups, u.Trace)
		}
	}
	if len(runs) != len(groups)-1 {
		t.Fatalf("partial runs %d, want %d", len(runs), len(groups)-1)
	}
	report, err := rmwtso.BuildReport(o, runs)
	if err != nil {
		t.Fatal(err)
	}
	report.Coordination = partial.Coordination
	var b bytes.Buffer
	if err := rmwtso.EncodeReport(&b, report, rmwtso.FormatASCII); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "DEAD-LETTERED") || !strings.Contains(b.String(), string(poisoned)) {
		t.Errorf("partial ASCII report does not list the dead-lettered unit")
	}
}

// TestCoordinatedSweepAllWorkersCrash verifies the sweep fails fast
// (instead of hanging) when every worker dies.
func TestCoordinatedSweepAllWorkersCrash(t *testing.T) {
	o := shardOptions()
	plan, err := rmwtso.DefaultPlan(o)
	if err != nil {
		t.Fatal(err)
	}
	cfg := coordConfig()
	cfg.Workers = 2
	cfg.MaxAttempts = 100 // the attempt budget must not be what terminates this
	cfg.FaultInjector = func(string, rmwtso.Unit, int) error {
		return rmwtso.ErrInjectedCrash
	}
	runner := rmwtso.NewRunner(rmwtso.WithCoordinator(cfg))
	_, err = runner.RunPlan(nil, plan, rmwtso.FullShard())
	if err == nil || !strings.Contains(err.Error(), "workers crashed") {
		t.Fatalf("want all-workers-crashed error, got %v", err)
	}
}

// TestCoordinatedHTTPSweep runs the multi-machine shape in miniature:
// a CoordServer over httptest, three RunPlanWorker clients (one of which
// crashes mid-sweep and is replaced by lease expiry), and the assembled
// result byte-identical to the static baseline.
func TestCoordinatedHTTPSweep(t *testing.T) {
	o := shardOptions()
	plan, err := rmwtso.DefaultPlan(o)
	if err != nil {
		t.Fatal(err)
	}
	wantRuns, _, wantBytes := staticBaseline(t, o, plan)

	server, err := rmwtso.NewRunner(rmwtso.WithCoordinator(coordConfig())).NewCoordServer(plan, rmwtso.FullShard())
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(server.Handler())
	defer hs.Close()

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		cfg := coordConfig()
		if i == 2 {
			var crashed atomic.Bool
			cfg.FaultInjector = func(_ string, _ rmwtso.Unit, _ int) error {
				if crashed.CompareAndSwap(false, true) {
					return rmwtso.ErrInjectedCrash
				}
				return nil
			}
		}
		worker := rmwtso.NewRunner(rmwtso.WithCoordinator(cfg))
		name := fmt.Sprintf("http-worker-%d", i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := worker.RunPlanWorker(nil, plan, hs.URL, name)
			if i == 2 {
				if !errors.Is(err, rmwtso.ErrInjectedCrash) {
					t.Errorf("crashing worker exit: %v", err)
				}
				return
			}
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}

	res, err := server.Wait(nil)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	checkCoordinatedIdentity(t, o, plan, res, "http", wantRuns, wantBytes)
	if res.Coordination.Expired < 1 {
		t.Errorf("crashed HTTP worker left no expiry: %+v", res.Coordination)
	}
	var names []string
	for _, w := range res.Coordination.Workers {
		names = append(names, w.Worker)
	}
	sort.Strings(names)
	if len(names) != 3 {
		t.Errorf("worker names %v", names)
	}
}
