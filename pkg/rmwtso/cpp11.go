package rmwtso

import "repro/internal/cpp11"

// Cpp11Program is a small C/C++11 program over atomic and non-atomic
// locations, the source language of the paper's Table 4 compilation
// schemes.
type Cpp11Program = cpp11.Program

// Cpp11Stmt is one statement of a C/C++11 program.
type Cpp11Stmt = cpp11.Stmt

// Cpp11Semantics is the exhaustive C/C++11 semantics of a program: its
// consistent executions, raciness and allowed outcomes.
type Cpp11Semantics = cpp11.Semantics

// Mapping is one of the paper's Table 4 compilation schemes from C/C++11
// accesses to x86-TSO instruction sequences.
type Mapping = cpp11.Mapping

// The Table 4 mappings: which SC accesses compile to locked RMWs.
const (
	ReadWriteMapping = cpp11.ReadWriteMapping
	ReadMapping      = cpp11.ReadMapping
	WriteMapping     = cpp11.WriteMapping
)

// MappingResult reports whether one mapping is a sound compilation scheme
// for one program under one RMW atomicity type.
type MappingResult = cpp11.ValidationResult

// AllMappings lists the Table 4 mappings in table order.
func AllMappings() []Mapping { return cpp11.AllMappings() }

// ParseMapping parses a mapping name ("read-write", "read", "write").
func ParseMapping(s string) (Mapping, error) { return cpp11.ParseMapping(s) }

// NewCpp11Program returns an empty C/C++11 program with the given name.
func NewCpp11Program(name string) *Cpp11Program { return cpp11.NewProgram(name) }

// Load builds a non-atomic load into a register.
func Load(addr Addr, reg string) Cpp11Stmt { return cpp11.Load(addr, reg) }

// Store builds a non-atomic store.
func Store(addr Addr, v Value) Cpp11Stmt { return cpp11.Store(addr, v) }

// SCLoad builds a sequentially-consistent atomic load.
func SCLoad(addr Addr, reg string) Cpp11Stmt { return cpp11.SCLoad(addr, reg) }

// SCStore builds a sequentially-consistent atomic store.
func SCStore(addr Addr, v Value) Cpp11Stmt { return cpp11.SCStore(addr, v) }

// AnalyzeCpp11 computes the exhaustive C/C++11 semantics of the program.
func AnalyzeCpp11(p *Cpp11Program) (*Cpp11Semantics, error) { return cpp11.Analyze(p) }

// CompileCpp11 translates a C/C++11 program to a TSO litmus program under
// the mapping.
func CompileCpp11(p *Cpp11Program, m Mapping) (*Program, error) { return cpp11.Compile(p, m) }

// ValidateMapping checks one (program, mapping, atomicity type)
// combination by exhaustive comparison of the two models' outcome sets.
// For whole suites, prefer Cpp11Suite().Validate or
// Runner.ValidateMappings, which fan the combinations across the worker
// pool.
func ValidateMapping(p *Cpp11Program, m Mapping, typ AtomicityType) (MappingResult, error) {
	return cpp11.ValidateMapping(p, m, typ)
}

// C/C++11 program groups understood by the registry.
const (
	// GroupValidation tags the race-free programs that validate the
	// Table 4 mappings.
	GroupValidation = cpp11.GroupValidation
	// GroupIdiom tags the remaining example idioms.
	GroupIdiom = cpp11.GroupIdiom
)

// RegisterCpp11Program adds a named C/C++11 program constructor to the
// registry under a group. Duplicate names panic.
func RegisterCpp11Program(group, name string, build func() *Cpp11Program) {
	cpp11.RegisterProgram(group, name, build)
}

// FindCpp11Program returns a fresh instance of the registered program
// with the given name, or nil.
func FindCpp11Program(name string) *Cpp11Program { return cpp11.BuildProgram(name) }

// Cpp11SuiteView is a filterable selection of registered C/C++11
// programs, mirroring SuiteView.
type Cpp11SuiteView struct {
	progs []*Cpp11Program
	err   error
}

// Cpp11Suite returns a view over every registered C/C++11 program, in
// registration order (the validation set first).
func Cpp11Suite() *Cpp11SuiteView {
	v := &Cpp11SuiteView{}
	v.progs, v.err = cpp11.MatchPrograms("")
	return v
}

// Cpp11ValidationSuite returns a view over the race-free programs used to
// validate the Table 4 mappings.
func Cpp11ValidationSuite() *Cpp11SuiteView {
	return &Cpp11SuiteView{progs: cpp11.ProgramsByGroup(cpp11.GroupValidation)}
}

// Filter narrows the view to programs whose name matches the glob
// pattern. A malformed pattern poisons the view; the error is returned by
// Validate.
func (v *Cpp11SuiteView) Filter(pattern string) *Cpp11SuiteView {
	if v.err != nil {
		return v
	}
	matched, err := cpp11.MatchPrograms(pattern)
	if err != nil {
		return &Cpp11SuiteView{err: err}
	}
	byName := map[string]bool{}
	for _, p := range matched {
		byName[p.Name] = true
	}
	out := &Cpp11SuiteView{}
	for _, p := range v.progs {
		if byName[p.Name] {
			out.progs = append(out.progs, p)
		}
	}
	return out
}

// Names returns the names of the programs in the view, in order.
func (v *Cpp11SuiteView) Names() []string {
	out := make([]string, len(v.progs))
	for i, p := range v.progs {
		out[i] = p.Name
	}
	return out
}

// Programs returns the programs in the view, in order.
func (v *Cpp11SuiteView) Programs() []*Cpp11Program { return append([]*Cpp11Program(nil), v.progs...) }

// Err returns the sticky filter error, if any.
func (v *Cpp11SuiteView) Err() error { return v.err }

// Validate checks every (program, mapping, atomicity type) combination of
// the view with a Runner built from the options, streaming each
// validation to the observer as it completes. Results come back in
// deterministic (program, mapping, type) order.
func (v *Cpp11SuiteView) Validate(opts ...Option) ([]MappingResult, error) {
	if v.err != nil {
		return nil, v.err
	}
	return NewRunner(opts...).ValidateMappings(v.progs...)
}
