package rmwtso_test

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"repro/internal/memmodel"
	"repro/pkg/rmwtso"
)

// registryPrograms returns every enumerable TSO program both registries
// induce: the program of each registered litmus test, plus every
// registered C/C++11 program compiled under each Table 4 mapping. This is
// the corpus the parallel-vs-sequential differential suite runs over; it
// spans RMW-free classics, RMW chains with dropped cyclic candidates, and
// the IRIW-class compiled programs whose candidate spaces reach the tens
// of thousands.
func registryPrograms(t testing.TB) map[string]*rmwtso.Program {
	t.Helper()
	out := map[string]*rmwtso.Program{}
	for _, tst := range rmwtso.Suite().Tests() {
		out["litmus/"+tst.Name] = tst.Program
	}
	for _, p := range rmwtso.Cpp11Suite().Programs() {
		for _, m := range rmwtso.AllMappings() {
			compiled, err := rmwtso.CompileCpp11(p, m)
			if err != nil {
				t.Fatalf("compile %s under %s: %v", p.Name, m, err)
			}
			out[fmt.Sprintf("cpp11/%s/%s", p.Name, m)] = compiled
		}
	}
	if len(out) < 15 {
		t.Fatalf("registry corpus suspiciously small: %d programs", len(out))
	}
	return out
}

// sequentialKeys enumerates the program with the sequential visitor API
// and returns each candidate's canonical key, in enumeration order.
func sequentialKeys(t testing.TB, p *rmwtso.Program) []string {
	t.Helper()
	var keys []string
	if err := rmwtso.EnumerateExecutionsFunc(p, func(x *rmwtso.Execution) bool {
		keys = append(keys, x.Key())
		return true
	}); err != nil {
		t.Fatalf("%s: EnumerateExecutionsFunc: %v", p.Name, err)
	}
	return keys
}

// TestEnumerateParallelDifferential asserts, for every program in both
// registries and workers in {1, 2, 8}, that the parallel enumeration
// visits exactly the same multiset of executions as the sequential one —
// in the ordered (default) mode even in exactly the same order, and in
// the unordered mode as the same multiset of canonical keys. Run under
// -race in CI, this is the lock-down for the rf-partitioned enumeration
// inside a single litmus verdict.
func TestEnumerateParallelDifferential(t *testing.T) {
	for name, p := range registryPrograms(t) {
		want := sequentialKeys(t, p)
		for _, workers := range []int{1, 2, 8} {
			var ordered []string
			err := rmwtso.EnumerateExecutionsParallel(context.Background(), p, workers,
				func(x *rmwtso.Execution) bool {
					ordered = append(ordered, x.Key())
					return true
				})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if len(ordered) != len(want) {
				t.Fatalf("%s workers=%d: %d executions, want %d", name, workers, len(ordered), len(want))
			}
			for i := range want {
				if ordered[i] != want[i] {
					t.Fatalf("%s workers=%d: execution %d out of order:\n got %s\nwant %s",
						name, workers, i, ordered[i], want[i])
				}
			}

			var unordered []string
			err = memmodel.EnumerateParallel(context.Background(), p, workers,
				func(x *rmwtso.Execution) bool {
					unordered = append(unordered, x.Key())
					return true
				}, memmodel.EnumUnordered())
			if err != nil {
				t.Fatalf("%s workers=%d unordered: %v", name, workers, err)
			}
			sortedWant := append([]string(nil), want...)
			sort.Strings(sortedWant)
			sort.Strings(unordered)
			if len(unordered) != len(sortedWant) {
				t.Fatalf("%s workers=%d unordered: %d executions, want %d",
					name, workers, len(unordered), len(sortedWant))
			}
			for i := range sortedWant {
				if unordered[i] != sortedWant[i] {
					t.Fatalf("%s workers=%d unordered: multisets differ at %d:\n got %s\nwant %s",
						name, workers, i, unordered[i], sortedWant[i])
				}
			}
		}
	}
}

// TestCountCandidatesMatchesEnumerationRegistryWide is the registry-wide
// generalization of the old SB-only count test: for every program in both
// registries, CountCandidates equals the number of enumerated executions,
// and stopping the enumeration after k visits yields exactly k — through
// the sequential API and the parallel one.
func TestCountCandidatesMatchesEnumerationRegistryWide(t *testing.T) {
	for name, p := range registryPrograms(t) {
		count, err := rmwtso.CountCandidates(p)
		if err != nil {
			t.Fatalf("%s: CountCandidates: %v", name, err)
		}
		enumerated := len(sequentialKeys(t, p))
		if enumerated != count {
			t.Fatalf("%s: CountCandidates=%d but enumeration visits %d", name, count, enumerated)
		}
		if count == 0 {
			t.Fatalf("%s: no candidates", name)
		}

		k := count/2 + 1
		for _, enumerate := range map[string]func(visit func(*rmwtso.Execution) bool) error{
			"sequential": func(visit func(*rmwtso.Execution) bool) error {
				return rmwtso.EnumerateExecutionsFunc(p, visit)
			},
			"parallel-8": func(visit func(*rmwtso.Execution) bool) error {
				return rmwtso.EnumerateExecutionsParallel(context.Background(), p, 8, visit)
			},
		} {
			visited := 0
			if err := enumerate(func(*rmwtso.Execution) bool {
				visited++
				return visited < k
			}); err != nil {
				t.Fatalf("%s: early-stop enumeration: %v", name, err)
			}
			if visited != k {
				t.Fatalf("%s: early stop visited %d executions, want exactly %d", name, visited, k)
			}
		}
	}
}

// TestCheckTestsEnumWorkersIdenticalVerdicts runs the full litmus suite
// with explicit per-verdict enumeration parallelism and asserts every
// verdict — truth value, candidate count, valid count, outcome keys — is
// identical to the sequential run.
func TestCheckTestsEnumWorkersIdenticalVerdicts(t *testing.T) {
	seq, err := rmwtso.Suite().Run(rmwtso.WithEnumWorkers(1), rmwtso.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, enumWorkers := range []int{0, 8} {
		par, err := rmwtso.Suite().Run(rmwtso.WithEnumWorkers(enumWorkers))
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(seq) {
			t.Fatalf("enumWorkers=%d: %d results, want %d", enumWorkers, len(par), len(seq))
		}
		for i := range seq {
			s, p := seq[i], par[i]
			if s.Test.Name != p.Test.Name || s.Atomicity != p.Atomicity {
				t.Fatalf("enumWorkers=%d: result %d is for %s/%s, want %s/%s",
					enumWorkers, i, p.Test.Name, p.Atomicity, s.Test.Name, s.Atomicity)
			}
			if s.Holds != p.Holds || s.Candidates != p.Candidates || s.ValidExecutions != p.ValidExecutions {
				t.Fatalf("enumWorkers=%d: %s/%s verdict drifted: holds %v/%v candidates %d/%d valid %d/%d",
					enumWorkers, s.Test.Name, s.Atomicity, s.Holds, p.Holds,
					s.Candidates, p.Candidates, s.ValidExecutions, p.ValidExecutions)
			}
			wantKeys := s.Outcomes.Keys()
			gotKeys := p.Outcomes.Keys()
			if len(wantKeys) != len(gotKeys) {
				t.Fatalf("enumWorkers=%d: %s/%s outcome sets differ", enumWorkers, s.Test.Name, s.Atomicity)
			}
			for j := range wantKeys {
				if wantKeys[j] != gotKeys[j] {
					t.Fatalf("enumWorkers=%d: %s/%s outcome %d differs: %s vs %s",
						enumWorkers, s.Test.Name, s.Atomicity, j, gotKeys[j], wantKeys[j])
				}
			}
		}
	}
}

// TestValidateMappingsEnumWorkersIdentical does the same for the C/C++11
// mapping validations, whose compiled IRIW program is the largest
// candidate space in the repository.
func TestValidateMappingsEnumWorkersIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("IRIW-class mapping validation is slow in -short mode")
	}
	progs := rmwtso.Cpp11Suite().Programs()
	seq, err := rmwtso.Cpp11Suite().Validate(rmwtso.WithEnumWorkers(1), rmwtso.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := rmwtso.Cpp11Suite().Validate(rmwtso.WithEnumWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) || len(seq) == 0 {
		t.Fatalf("result counts differ: %d vs %d (programs: %d)", len(seq), len(par), len(progs))
	}
	for i := range seq {
		s, p := seq[i], par[i]
		if s.Program != p.Program || s.Mapping != p.Mapping || s.Atomicity != p.Atomicity {
			t.Fatalf("result %d ordering drifted: %s/%s/%s vs %s/%s/%s",
				i, s.Program, s.Mapping, s.Atomicity, p.Program, p.Mapping, p.Atomicity)
		}
		if s.Sound != p.Sound || s.Racy != p.Racy {
			t.Fatalf("%s/%s/%s: soundness drifted: sound %v/%v racy %v/%v",
				s.Program, s.Mapping, s.Atomicity, s.Sound, p.Sound, s.Racy, p.Racy)
		}
		if fmt.Sprint(s.TSOOutcomes) != fmt.Sprint(p.TSOOutcomes) {
			t.Fatalf("%s/%s/%s: TSO outcome sets drifted", s.Program, s.Mapping, s.Atomicity)
		}
	}
}
