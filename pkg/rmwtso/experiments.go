package rmwtso

import (
	"repro/internal/experiments"
)

// Options configure an experiment run: core count, workload scale, seed
// and architectural overrides.
type Options = experiments.Options

// DefaultOptions reproduce the paper's setup (32 cores, full workloads).
func DefaultOptions() Options { return experiments.DefaultOptions() }

// QuickOptions shrink the runs for tests and benchmarks (8 cores, short
// workloads, same structure).
func QuickOptions() Options { return experiments.QuickOptions() }

// BenchmarkRun holds the per-type simulation results for one benchmark,
// the unit of data behind Table 3 and Fig. 11.
type BenchmarkRun = experiments.BenchmarkRun

// Rows and entries of the paper's tables and figures.
type (
	// Table1Row is one row of Table 1 (idiom support per atomicity type).
	Table1Row = experiments.Table1Row
	// Table3Row is one row of Table 3 (benchmark characteristics).
	Table3Row = experiments.Table3Row
	// Table4Row is one row of Table 4 (mapping soundness).
	Table4Row = experiments.Table4Row
	// Fig11aEntry is one benchmark's per-RMW cost split (Fig. 11a).
	Fig11aEntry = experiments.Fig11aEntry
	// Fig11bEntry is one benchmark's execution-time overhead (Fig. 11b).
	Fig11bEntry = experiments.Fig11bEntry
	// Summary is the headline summary of the evaluation.
	Summary = experiments.Summary
)

// RunTable1 regenerates Table 1 by model checking the paper's litmus
// tests and validating the C/C++11 mappings.
func RunTable1() ([]Table1Row, error) { return experiments.RunTable1() }

// RunTable1Opts is RunTable1 honouring the options' EnumWorkers: each
// verdict's candidate enumeration is fanned across that many goroutines
// (0 picks the per-program candidate-count heuristic).
func RunTable1Opts(o Options) ([]Table1Row, error) { return experiments.RunTable1Opts(o) }

// CheckTable1Matches verifies the regenerated Table 1 against the paper.
func CheckTable1Matches(rows []Table1Row) error { return experiments.CheckTable1Matches(rows) }

// RenderTable1 renders Table 1 rows in the paper's layout.
func RenderTable1(rows []Table1Row) string { return experiments.RenderTable1(rows) }

// RenderTable2 renders the architectural parameters (Table 2).
func RenderTable2(cfg SimConfig) string { return experiments.RenderTable2(cfg) }

// Table3FromRuns derives the Table 3 rows from benchmark runs.
func Table3FromRuns(runs []*BenchmarkRun) []Table3Row { return experiments.Table3FromRuns(runs) }

// RenderTable3 renders Table 3 rows in the paper's layout.
func RenderTable3(rows []Table3Row) string { return experiments.RenderTable3(rows) }

// RunTable4 regenerates the Table 4 mapping-soundness matrix.
func RunTable4() ([]Table4Row, error) { return experiments.RunTable4() }

// RunTable4Opts is RunTable4 honouring the options' EnumWorkers, like
// RunTable1Opts.
func RunTable4Opts(o Options) ([]Table4Row, error) { return experiments.RunTable4Opts(o) }

// RenderTable4 renders Table 4 rows in the paper's layout.
func RenderTable4(rows []Table4Row) string { return experiments.RenderTable4(rows) }

// Fig11FromRuns derives the Fig. 11(a) and (b) entries from benchmark
// runs.
func Fig11FromRuns(runs []*BenchmarkRun) ([]Fig11aEntry, []Fig11bEntry) {
	return experiments.Fig11FromRuns(runs)
}

// RenderFig11a renders the per-RMW cost split chart.
func RenderFig11a(entries []Fig11aEntry) string { return experiments.RenderFig11a(entries) }

// RenderFig11b renders the execution-time overhead chart.
func RenderFig11b(entries []Fig11bEntry) string { return experiments.RenderFig11b(entries) }

// Summarize derives the headline summary from the figure entries.
func Summarize(a []Fig11aEntry, b []Fig11bEntry) Summary { return experiments.Summarize(a, b) }

// BenchmarkSpec describes one benchmark of a sweep: the profile, its
// replacement variant, and the atomicity types it runs under.
type BenchmarkSpec = experiments.BenchmarkSpec

// Table3Specs lists the seven Table 3 benchmarks, each under all three
// RMW types.
func Table3Specs() []BenchmarkSpec { return experiments.Table3Specs() }

// Cpp11Specs lists the wsq-mst C/C++11 replacement variants and the RMW
// types that are sound for them.
func Cpp11Specs() []BenchmarkSpec { return experiments.Cpp11Specs() }

// RunBenchmarks simulates every (spec, type) pair across the worker pool,
// streaming each finished run to the observer. A spec's types are
// intersected with the Runner's configured types (WithRMWTypes); specs
// left with no types are dropped.
//
// It is a thin wrapper over the plan pipeline: the (spec, type) grid is
// enumerated into a Plan of content-addressed units, executed unsharded
// with RunPlan (lazy streaming by default, Options.Materialize to share
// pre-built traces per spec, the Runner's or options' result cache
// consulted per unit and hits streamed flagged CacheHit) and reassembled
// with Plan.Runs — so an in-process sweep and a sharded fleet run through
// one code path and produce identical results. Results come back in spec
// order with one ByType entry per simulated type.
func (r *Runner) RunBenchmarks(o Options, specs []BenchmarkSpec) ([]*BenchmarkRun, error) {
	return r.eng.RunBenchmarks(o, specs)
}

// RunBenchmarksSeeds is RunBenchmarks over an explicit workload seed
// list: the full (spec, type) grid is rerun under every seed in one
// plan, yielding one BenchmarkRun per (spec, seed) pair. Reports built
// from multi-seed runs gain the cross-seed mean/CI section (SeedStats).
func (r *Runner) RunBenchmarksSeeds(o Options, specs []BenchmarkSpec, seeds ...int64) ([]*BenchmarkRun, error) {
	return r.eng.RunBenchmarksSeeds(o, specs, seeds...)
}

// SeedAggregate is the cross-seed mean/CI statistics of one (benchmark,
// RMW type) cell of a multi-seed sweep.
type SeedAggregate = experiments.SeedAggregate

// AggregateSeeds derives the cross-seed statistics from benchmark runs;
// it returns nil for single-seed sweeps.
func AggregateSeeds(runs []*BenchmarkRun) []SeedAggregate { return experiments.AggregateSeeds(runs) }

// RenderSeedAggregates renders the cross-seed statistics table.
func RenderSeedAggregates(aggs []SeedAggregate) string {
	return experiments.RenderSeedAggregates(aggs)
}

// RunTable3Benchmarks simulates the Table 3 benchmark set across the
// worker pool. The result feeds Table 3 and Fig. 11(a)/(b); note the
// table and figure renderers expect all three types, so restrict
// WithRMWTypes only for ad-hoc sweeps.
func (r *Runner) RunTable3Benchmarks(o Options) ([]*BenchmarkRun, error) {
	return r.RunBenchmarks(o, Table3Specs())
}

// RunCpp11Benchmarks simulates the wsq-mst C/C++11 variants of
// Cpp11Specs across the pool.
func (r *Runner) RunCpp11Benchmarks(o Options) ([]*BenchmarkRun, error) {
	return r.RunBenchmarks(o, Cpp11Specs())
}
