package rmwtso

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/simcache"
	"repro/internal/workload"
)

// deadlockError reports a benchmark run that wedged; experiment sweeps
// treat deadlock as an error because only the Fig. 10 demo expects it.
func deadlockError(name string, typ AtomicityType) error {
	return fmt.Errorf("rmwtso: %s under %s deadlocked", name, typ)
}

// Options configure an experiment run: core count, workload scale, seed
// and architectural overrides.
type Options = experiments.Options

// DefaultOptions reproduce the paper's setup (32 cores, full workloads).
func DefaultOptions() Options { return experiments.DefaultOptions() }

// QuickOptions shrink the runs for tests and benchmarks (8 cores, short
// workloads, same structure).
func QuickOptions() Options { return experiments.QuickOptions() }

// BenchmarkRun holds the per-type simulation results for one benchmark,
// the unit of data behind Table 3 and Fig. 11.
type BenchmarkRun = experiments.BenchmarkRun

// Rows and entries of the paper's tables and figures.
type (
	// Table1Row is one row of Table 1 (idiom support per atomicity type).
	Table1Row = experiments.Table1Row
	// Table3Row is one row of Table 3 (benchmark characteristics).
	Table3Row = experiments.Table3Row
	// Table4Row is one row of Table 4 (mapping soundness).
	Table4Row = experiments.Table4Row
	// Fig11aEntry is one benchmark's per-RMW cost split (Fig. 11a).
	Fig11aEntry = experiments.Fig11aEntry
	// Fig11bEntry is one benchmark's execution-time overhead (Fig. 11b).
	Fig11bEntry = experiments.Fig11bEntry
	// Summary is the headline summary of the evaluation.
	Summary = experiments.Summary
)

// RunTable1 regenerates Table 1 by model checking the paper's litmus
// tests and validating the C/C++11 mappings.
func RunTable1() ([]Table1Row, error) { return experiments.RunTable1() }

// RunTable1Opts is RunTable1 honouring the options' EnumWorkers: each
// verdict's candidate enumeration is fanned across that many goroutines
// (0 picks the per-program candidate-count heuristic).
func RunTable1Opts(o Options) ([]Table1Row, error) { return experiments.RunTable1Opts(o) }

// CheckTable1Matches verifies the regenerated Table 1 against the paper.
func CheckTable1Matches(rows []Table1Row) error { return experiments.CheckTable1Matches(rows) }

// RenderTable1 renders Table 1 rows in the paper's layout.
func RenderTable1(rows []Table1Row) string { return experiments.RenderTable1(rows) }

// RenderTable2 renders the architectural parameters (Table 2).
func RenderTable2(cfg SimConfig) string { return experiments.RenderTable2(cfg) }

// Table3FromRuns derives the Table 3 rows from benchmark runs.
func Table3FromRuns(runs []*BenchmarkRun) []Table3Row { return experiments.Table3FromRuns(runs) }

// RenderTable3 renders Table 3 rows in the paper's layout.
func RenderTable3(rows []Table3Row) string { return experiments.RenderTable3(rows) }

// RunTable4 regenerates the Table 4 mapping-soundness matrix.
func RunTable4() ([]Table4Row, error) { return experiments.RunTable4() }

// RunTable4Opts is RunTable4 honouring the options' EnumWorkers, like
// RunTable1Opts.
func RunTable4Opts(o Options) ([]Table4Row, error) { return experiments.RunTable4Opts(o) }

// RenderTable4 renders Table 4 rows in the paper's layout.
func RenderTable4(rows []Table4Row) string { return experiments.RenderTable4(rows) }

// Fig11FromRuns derives the Fig. 11(a) and (b) entries from benchmark
// runs.
func Fig11FromRuns(runs []*BenchmarkRun) ([]Fig11aEntry, []Fig11bEntry) {
	return experiments.Fig11FromRuns(runs)
}

// RenderFig11a renders the per-RMW cost split chart.
func RenderFig11a(entries []Fig11aEntry) string { return experiments.RenderFig11a(entries) }

// RenderFig11b renders the execution-time overhead chart.
func RenderFig11b(entries []Fig11bEntry) string { return experiments.RenderFig11b(entries) }

// Summarize derives the headline summary from the figure entries.
func Summarize(a []Fig11aEntry, b []Fig11bEntry) Summary { return experiments.Summarize(a, b) }

// BenchmarkSpec describes one benchmark of a sweep: the profile, its
// replacement variant, and the atomicity types it runs under.
type BenchmarkSpec = experiments.BenchmarkSpec

// Table3Specs lists the seven Table 3 benchmarks, each under all three
// RMW types.
func Table3Specs() []BenchmarkSpec { return experiments.Table3Specs() }

// Cpp11Specs lists the wsq-mst C/C++11 replacement variants and the RMW
// types that are sound for them.
func Cpp11Specs() []BenchmarkSpec { return experiments.Cpp11Specs() }

// specTypes intersects a spec's types with the Runner's configured
// types, preserving the spec's order. With the default configuration
// (all three types) this is the spec's list unchanged.
func (r *Runner) specTypes(s BenchmarkSpec) []AtomicityType {
	allowed := map[AtomicityType]bool{}
	for _, t := range r.opts.types {
		allowed[t] = true
	}
	var out []AtomicityType
	for _, t := range s.Types {
		if allowed[t] {
			out = append(out, t)
		}
	}
	return out
}

// RunBenchmarks simulates every (spec, type) pair across the worker pool,
// streaming each finished run to the observer. A spec's types are
// intersected with the Runner's configured types (WithRMWTypes); specs
// left with no types are dropped.
//
// By default every simulation unit pulls its trace lazily from the
// workload generator (Generator.Source), so peak memory per unit is
// bounded by the per-core episode window no matter how large
// Options.Scale makes the workloads. With Options.Materialize each spec's
// trace is instead generated once up front (in parallel) and shared
// read-only by its per-type runs — trading memory for not regenerating
// ops per type. Both paths produce identical results; results come back
// in spec order with one ByType entry per simulated type.
//
// With a result cache — the Runner's (WithCache) or, failing that, the
// options' (Options.Cache / Options.CacheDir) — every (spec, type) unit
// is looked up before simulating and stored after: hits stream to the
// observer flagged CacheHit without executing the simulator, so a fully
// warm sweep does zero simulation work yet returns identical runs.
func (r *Runner) RunBenchmarks(o Options, specs []BenchmarkSpec) ([]*BenchmarkRun, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	cache := r.opts.cache
	if cache == nil {
		var err error
		if cache, err = o.ResultCache(); err != nil {
			return nil, err
		}
	}
	base := o.BaseConfig()
	kept := make([]BenchmarkSpec, 0, len(specs))
	types := make([][]AtomicityType, 0, len(specs))
	for _, s := range specs {
		ts := r.specTypes(s)
		if len(ts) == 0 {
			continue
		}
		kept = append(kept, s)
		types = append(types, ts)
	}

	// Phase 1: build each spec's trace source. Sources are cheap (no ops
	// are generated yet); with Materialize they are drained into shared
	// slices here, one unit per spec — unless every per-type run of the
	// spec is already cached, in which case the warm run skips trace
	// generation entirely (a corrupt entry just falls back to the lazy
	// source, which is byte-identical). The generator's core count comes
	// from the effective configuration so a count supplied only through
	// Options.Config still shapes the workload. Cache keys always derive
	// from the raw workload source (keySrcs), never the materialized
	// adapter, so streamed and materialized runs share entries.
	sources := make([]TraceSource, len(kept))
	keySrcs := make([]TraceSource, len(kept))
	keys := make([][]simcache.Key, len(kept))
	err := r.runUnits(len(kept), func(i int) error {
		gen := workload.Generator{Cores: base.Cores, Seed: o.Seed, Replacement: kept[i].Variant}
		src, err := gen.Source(o.ScaledProfile(kept[i].Profile))
		if err != nil {
			return err
		}
		keySrcs[i] = src
		keys[i] = make([]simcache.Key, len(types[i]))
		cached := cache != nil
		for ti, typ := range types[i] {
			cfg := base.WithRMWType(typ)
			// Validate before digesting so an invalid configuration
			// never mints a cache key.
			if err := cfg.Validate(); err != nil {
				return err
			}
			keys[i][ti] = simcache.SimKey(cfg, src, o.Seed, o.Scale)
			if cached && !cache.Has(keys[i][ti]) {
				cached = false
			}
		}
		if o.Materialize && !cached {
			sources[i] = sim.Materialize(src).Source()
		} else {
			sources[i] = src
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: simulate, one unit per (spec, type) pair. Units share a
	// spec's source; each run pulls its own fresh streams from it.
	type unit struct {
		si, ti int
		typ    AtomicityType
	}
	var units []unit
	for si := range kept {
		for ti, typ := range types[si] {
			units = append(units, unit{si, ti, typ})
		}
	}
	results := make([]*SimResult, len(units))
	err = r.runUnits(len(units), func(i int) error {
		u := units[i]
		key := keys[u.si][u.ti]
		if cache != nil {
			if res, ok := cache.GetSim(key); ok {
				// Warm runs must reject a deadlocked result exactly like
				// cold runs do (such entries are never stored here, but a
				// foreign writer could have).
				if res.Deadlocked {
					return deadlockError(sources[u.si].Name(), u.typ)
				}
				results[i] = res
				r.emit(Event{Sim: &SimRun{Trace: sources[u.si].Name(), Type: u.typ, Result: res, CacheHit: true}})
				return nil
			}
		}
		res, err := SimulateSource(base.WithRMWType(u.typ), sources[u.si])
		if err != nil {
			return err
		}
		if res.Deadlocked {
			return deadlockError(sources[u.si].Name(), u.typ)
		}
		if cache != nil {
			_ = cache.PutSim(key, res)
		}
		results[i] = res
		r.emit(Event{Sim: &SimRun{Trace: sources[u.si].Name(), Type: u.typ, Result: res}})
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Assemble in spec order.
	runs := make([]*BenchmarkRun, len(kept))
	for si, s := range kept {
		runs[si] = &BenchmarkRun{
			Profile: s.Profile,
			Variant: s.Variant,
			Name:    sources[si].Name(),
			ByType:  map[AtomicityType]*SimResult{},
		}
	}
	for i, u := range units {
		runs[u.si].ByType[u.typ] = results[i]
	}
	return runs, nil
}

// RunTable3Benchmarks simulates the Table 3 benchmark set across the
// worker pool. The result feeds Table 3 and Fig. 11(a)/(b); note the
// table and figure renderers expect all three types, so restrict
// WithRMWTypes only for ad-hoc sweeps.
func (r *Runner) RunTable3Benchmarks(o Options) ([]*BenchmarkRun, error) {
	return r.RunBenchmarks(o, Table3Specs())
}

// RunCpp11Benchmarks simulates the wsq-mst C/C++11 variants of
// Cpp11Specs across the pool.
func (r *Runner) RunCpp11Benchmarks(o Options) ([]*BenchmarkRun, error) {
	return r.RunBenchmarks(o, Cpp11Specs())
}
