package rmwtso_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/pkg/rmwtso"
)

// update regenerates the golden files instead of diffing against them:
//
//	go test ./pkg/rmwtso -run TestGoldenVerdicts -update
var update = flag.Bool("update", false, "rewrite the golden verdict file instead of diffing")

// goldenVerdicts renders the current verdict of every registered litmus
// test and every registered C/C++11 program × Table 4 mapping, under each
// RMW atomicity type, as a stable tab-separated table. "allowed" means
// the test's final condition holds over the valid executions; "sound"
// means every TSO outcome of the compiled program is a consistent C/C++11
// outcome ("racy" marks programs whose data race makes any mapping
// vacuously sound).
func goldenVerdicts(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	b.WriteString("# Golden verdicts for the litmus and C/C++11 registries.\n")
	b.WriteString("# Regenerate with: go test ./pkg/rmwtso -run TestGoldenVerdicts -update\n")
	b.WriteString("# A diff here means a memory-model change flipped a verdict; bless it only on purpose.\n")
	for _, tst := range rmwtso.Suite().Tests() {
		for _, typ := range rmwtso.AllTypes() {
			r, err := tst.Run(typ)
			if err != nil {
				t.Fatalf("%s under %s: %v", tst.Name, typ, err)
			}
			verdict := "forbidden"
			if r.Holds {
				verdict = "allowed"
			}
			fmt.Fprintf(&b, "litmus\t%s\t%s\t%s\n", tst.Name, typ, verdict)
		}
	}
	for _, p := range rmwtso.Cpp11Suite().Programs() {
		for _, m := range rmwtso.AllMappings() {
			for _, typ := range rmwtso.AllTypes() {
				r, err := rmwtso.ValidateMapping(p, m, typ)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", p.Name, m, typ, err)
				}
				verdict := "unsound"
				if r.Sound {
					verdict = "sound"
				}
				if r.Racy {
					verdict += " (racy)"
				}
				fmt.Fprintf(&b, "cpp11\t%s\t%s\t%s\t%s\n", p.Name, m, typ, verdict)
			}
		}
	}
	return b.String()
}

// TestGoldenVerdicts regenerates every registry verdict and diffs it
// against testdata/verdicts.golden, so future model edits cannot silently
// flip an allowed/forbidden or sound/unsound verdict. Run with -update to
// bless an intentional change.
func TestGoldenVerdicts(t *testing.T) {
	got := goldenVerdicts(t)
	path := filepath.Join("testdata", "verdicts.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	wantBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(want, "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("verdicts drifted from %s at line %d:\n got: %s\nwant: %s\n(bless intentional changes with -update)",
				path, i+1, g, w)
		}
	}
	t.Fatalf("verdicts drifted from %s (line lengths equal but content differs)", path)
}
