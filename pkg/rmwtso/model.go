package rmwtso

import (
	"context"

	"repro/internal/core"
	"repro/internal/memmodel"
)

// Addr is a memory location of a litmus program.
type Addr = memmodel.Addr

// Value is a value stored at a location or in a register.
type Value = memmodel.Value

// ThreadID identifies a thread of a litmus program.
type ThreadID = memmodel.ThreadID

// Program is a litmus-sized TSO program: a list of threads, each a list
// of instructions, plus initial memory values.
type Program = memmodel.Program

// Instr is one instruction of a litmus program.
type Instr = memmodel.Instr

// ModifyFunc computes an RMW's written value from its read value.
type ModifyFunc = memmodel.ModifyFunc

// Execution is one candidate execution of a litmus program: events plus a
// reads-from assignment and per-location write serializations. Executions
// received by enumeration visitors are owned by the enumerator's arena
// and valid only for the duration of the visit; use Execution.Clone to
// retain one.
type Execution = memmodel.Execution

// ErrSpaceTooLarge is returned (wrapped) by the enumeration entry points
// when a program's candidate space does not fit in an int; test for it
// with errors.Is.
var ErrSpaceTooLarge = memmodel.ErrSpaceTooLarge

// NewProgram returns an empty program with the given name.
func NewProgram(name string) *Program { return memmodel.NewProgram(name) }

// Read builds a load into a register.
func Read(addr Addr, reg string) Instr { return memmodel.Read(addr, reg) }

// Write builds a plain store.
func Write(addr Addr, v Value) Instr { return memmodel.Write(addr, v) }

// Fence builds an mfence.
func Fence() Instr { return memmodel.Fence() }

// Exchange builds a lock xchg: atomically write v, read the old value into
// reg.
func Exchange(addr Addr, reg string, v Value) Instr { return memmodel.Exchange(addr, reg, v) }

// FetchAdd builds a lock xadd: atomically add delta, read the old value
// into reg.
func FetchAdd(addr Addr, reg string, delta Value) Instr { return memmodel.FetchAdd(addr, reg, delta) }

// TestAndSet builds a test-and-set RMW: atomically write 1, read the old
// value into reg.
func TestAndSet(addr Addr, reg string) Instr { return memmodel.TestAndSet(addr, reg) }

// RMWInstr builds a generic RMW with an arbitrary modify function.
func RMWInstr(addr Addr, reg string, modify ModifyFunc) Instr {
	return memmodel.RMW(addr, reg, modify)
}

// EnumerateExecutions materializes every candidate execution of the
// program, each cloned out of the enumerator's arena so the returned
// executions remain valid indefinitely. Prefer EnumerateExecutionsFunc
// when scanning: its per-candidate loop reuses one arena slot and
// allocates nothing in steady state.
func EnumerateExecutions(p *Program) ([]*Execution, error) { return memmodel.Enumerate(p) }

// EnumerateExecutionsFunc streams every candidate execution of the program
// to visit, one at a time. Returning false stops the enumeration early.
// The visited executions are candidates only; filter them with
// Model.Valid (or use Model.ValidExecutionsFunc). Each execution is
// arena-owned and valid only during its visit (Clone to retain), and a
// program whose candidate space does not fit in an int fails with an
// error wrapping ErrSpaceTooLarge.
func EnumerateExecutionsFunc(p *Program, visit func(*Execution) bool) error {
	return memmodel.EnumerateFunc(p, visit)
}

// EnumerateExecutionsParallel streams every candidate execution of the
// program to visit with the rf×ws choice space statically partitioned
// into contiguous index ranges across workers goroutines (workers <= 0
// means GOMAXPROCS). visit is never called concurrently and receives the
// executions in exactly the sequential EnumerateExecutionsFunc order;
// returning false from visit cancels the remaining workers, and a
// cancelled ctx aborts the enumeration with ctx's error. The execution
// lifetime contract is EnumerateExecutionsFunc's: arena-owned, Clone to
// retain.
func EnumerateExecutionsParallel(ctx context.Context, p *Program, workers int, visit func(*Execution) bool) error {
	return memmodel.EnumerateParallel(ctx, p, workers, visit)
}

// CountCandidates returns the number of candidate executions the program
// enumerates, without assembling them. Useful for bounding litmus-test
// cost and for sizing the enumeration worker pool. A program whose
// candidate space does not fit in an int yields an error wrapping
// ErrSpaceTooLarge.
func CountCandidates(p *Program) (int, error) { return memmodel.CountCandidates(p) }

// AutoEnumWorkers returns the enumeration worker count the
// candidate-count heuristic picks for the program: GOMAXPROCS for
// IRIW-class candidate spaces, 1 for small ones. This is what
// WithEnumWorkers(0) — the default — uses per program.
func AutoEnumWorkers(p *Program) int { return memmodel.AutoEnumWorkers(p) }

// Model is a TSO memory model extended with RMWs of one atomicity type.
type Model = core.Model

// NewModel returns the model for the given atomicity type.
func NewModel(t AtomicityType) *Model { return core.NewModel(t) }

// Outcome is one observable result of a program: final register and
// memory values.
type Outcome = core.Outcome

// OutcomeSet is a set of observable outcomes keyed by Outcome.Key.
type OutcomeSet = core.OutcomeSet

// NewOutcomeSet returns an empty outcome set.
func NewOutcomeSet() *OutcomeSet { return core.NewOutcomeSet() }

// OutcomeOf extracts the observable outcome of an execution.
func OutcomeOf(x *Execution) Outcome { return core.OutcomeOf(x) }
