package rmwtso

import (
	"context"

	"repro/internal/engine"
)

// UnitID is the stable identifier of one sweep unit: a short prefix of
// the unit's content-addressed cache-key digest (simcache key material),
// so the same (config, benchmark, seed, scale, RMW type) has the same ID
// on every machine, at every shard count, in every process. Unit IDs are
// how shards address work and how merged artifacts reassemble a sweep.
type UnitID = engine.UnitID

// Unit is one addressable work unit of a sweep plan: one benchmark
// workload simulated under one RMW atomicity type with one seed and one
// architectural configuration.
type Unit = engine.Unit

// Plan is a deterministic, ordered enumeration of every unit of a sweep:
// the benchmark × RMW type × seed grid under one architectural
// configuration, with stable content-addressed unit IDs. A plan is pure
// metadata — building one generates no trace operations and runs no
// simulation — so every process of a sharded fleet can rebuild the
// identical plan from the same Options and agree on unit identities,
// which the plan fingerprint certifies.
type Plan = engine.Plan

// Shard selects a subset of a plan's units for one process of a fleet.
// The zero value selects the whole plan. With Count > 0, units are dealt
// round-robin by plan position: shard i of n covers the units at
// positions ≡ i (mod n), so the n shards of a plan partition it exactly
// and adjacent (cheap and expensive) units spread across the fleet. Only,
// when non-nil, additionally restricts the shard to units whose ID it
// accepts — set it alone (Count == 0) for an arbitrary unit-ID predicate.
type Shard = engine.Shard

// BuildPlan enumerates the sweep plan for the options and benchmark
// specs: units are ordered spec-major, then seed, then RMW type — the
// exact execution and result order of Runner.RunBenchmarks. Specs with no
// types are skipped. It fails on invalid options or configurations and on
// a unit-ID collision (which would make two distinct work units alias).
func BuildPlan(o Options, specs []BenchmarkSpec) (*Plan, error) {
	return engine.BuildPlan(o, specs)
}

// BuildPlanSeeds is BuildPlan over an explicit seed list, for sweeps that
// rerun the grid under several workload seeds. Every (spec, seed) pair
// becomes one source group; group identity — and thus the report's
// run-level identity — includes the seed (BenchmarkRun.Seed), so
// multi-seed plans reassemble into one run per (spec, seed) without
// name collisions.
func BuildPlanSeeds(o Options, specs []BenchmarkSpec, seeds ...int64) (*Plan, error) {
	return engine.BuildPlanSeeds(o, specs, seeds...)
}

// DefaultPlan enumerates the paper's full simulation sweep — the seven
// Table 3 benchmarks plus the wsq-mst C/C++11 replacement variants, each
// under its sound RMW types — for the options.
func DefaultPlan(o Options) (*Plan, error) { return engine.DefaultPlan(o) }

// DefaultPlanSeeds is DefaultPlan over an explicit seed list: the full
// sweep grid rerun under each workload seed.
func DefaultPlanSeeds(o Options, seeds ...int64) (*Plan, error) {
	return engine.DefaultPlanSeeds(o, seeds...)
}

// FullShard returns the selector that covers the whole plan.
func FullShard() Shard { return engine.FullShard() }

// ParseShard parses an "i/n" selector ("0/3" is the first of three
// shards), as taken by the binaries' -shard flag.
func ParseShard(spec string) (Shard, error) { return engine.ParseShard(spec) }

// RunPlan executes the units of the plan a shard selects on the Runner's
// worker pool and returns their results as a shard artifact. A nil ctx
// uses the Runner's context (WithContext). Unit identities, order and
// results are exactly the plan's: running shards 0..n-1 of a plan on n
// processes and merging the artifacts (MergeShards) reconstructs the
// unsharded sweep bit for bit.
//
// The plan — not the Runner's WithRMWTypes restriction — determines what
// runs: dropping plan units silently would leave merges incomplete. Each
// source group's trace streams lazily (or materializes once, with the
// plan options' Materialize) exactly like RunBenchmarks, and the Runner's
// cache (WithCache, else the plan options' Cache/CacheDir) serves and
// stores units by the same keys, so warm shards do zero simulation work.
func (r *Runner) RunPlan(ctx context.Context, plan *Plan, shard Shard) (*ShardResult, error) {
	return r.eng.RunPlan(ctx, plan, shard)
}
