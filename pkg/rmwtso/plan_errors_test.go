package rmwtso_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/pkg/rmwtso"
)

// fabricatedResults builds one syntactically valid UnitResult per plan
// unit without running any simulation (Runs only validates identity and
// result presence, not contents).
func fabricatedResults(plan *rmwtso.Plan) []rmwtso.UnitResult {
	var out []rmwtso.UnitResult
	for _, u := range plan.Units() {
		out = append(out, rmwtso.UnitResult{
			Unit: u.ID, Trace: u.Trace, Type: u.Type, Seed: u.Seed,
			Result: &rmwtso.SimResult{},
		})
	}
	return out
}

// descsOf renders the pinned "id (trace under type)" form, sorted.
func descsOf(units []rmwtso.Unit) []string {
	var out []string
	for _, u := range units {
		out = append(out, fmt.Sprintf("%s (%s under %s)", u.ID, u.Trace, u.Type))
	}
	sort.Strings(out)
	return out
}

// boundedWant mirrors the pinned bounded-list rendering: first 8 sorted
// entries, remainder summarized as "and K more".
func boundedWant(descs []string) string {
	if len(descs) <= 8 {
		return strings.Join(descs, ", ")
	}
	return fmt.Sprintf("%s and %d more", strings.Join(descs[:8], ", "), len(descs)-8)
}

// TestRunsMissingMessageFormat pins the merge-path missing-units message:
// sorted unit IDs, bounded at 8 plus a remainder count. The exact format
// is what operators grep in CI logs, so it must not drift silently.
func TestRunsMissingMessageFormat(t *testing.T) {
	plan, err := rmwtso.DefaultPlan(shardOptions())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() <= 8 {
		t.Fatalf("plan too small (%d units) to exercise the bound", plan.Len())
	}
	_, err = plan.Runs(nil)
	if err == nil {
		t.Fatal("empty merge succeeded")
	}
	want := fmt.Sprintf("rmwtso: %d of %d plan units missing: %s",
		plan.Len(), plan.Len(), boundedWant(descsOf(plan.Units())))
	if err.Error() != want {
		t.Errorf("missing-units message:\n got %q\nwant %q", err, want)
	}

	// A single missing unit is spelled out in full, no remainder clause.
	units := fabricatedResults(plan)
	dropped := plan.Units()[3]
	_, err = plan.Runs(append(append([]rmwtso.UnitResult(nil), units[:3]...), units[4:]...))
	if err == nil {
		t.Fatal("merge with a dropped unit succeeded")
	}
	want = fmt.Sprintf("rmwtso: 1 of %d plan units missing: %s (%s under %s)",
		plan.Len(), dropped.ID, dropped.Trace, dropped.Type)
	if err.Error() != want {
		t.Errorf("single-missing message:\n got %q\nwant %q", err, want)
	}
}

// TestRunsDuplicateMessageFormat pins the duplicated-units message: every
// duplicated ID listed (not just the first hit), sorted and bounded.
func TestRunsDuplicateMessageFormat(t *testing.T) {
	plan, err := rmwtso.DefaultPlan(shardOptions())
	if err != nil {
		t.Fatal(err)
	}
	units := fabricatedResults(plan)
	dupA, dupB := plan.Units()[5], plan.Units()[1]
	doubled := append(append([]rmwtso.UnitResult(nil), units...), units[5], units[1], units[1])

	_, err = plan.Runs(doubled)
	if err == nil {
		t.Fatal("merge with duplicated units succeeded")
	}
	want := fmt.Sprintf("rmwtso: 2 of %d plan units appear twice or more: %s",
		plan.Len(), boundedWant(descsOf([]rmwtso.Unit{dupA, dupB})))
	if err.Error() != want {
		t.Errorf("duplicate-units message:\n got %q\nwant %q", err, want)
	}
}

// TestRunsPartialSplitsCompleteGroups verifies RunsPartial keeps whole
// groups only and reports missing IDs sorted.
func TestRunsPartialSplitsCompleteGroups(t *testing.T) {
	plan, err := rmwtso.DefaultPlan(shardOptions())
	if err != nil {
		t.Fatal(err)
	}
	units := fabricatedResults(plan)
	// Drop the last plan unit: exactly its group should vanish.
	lost := plan.Units()[plan.Len()-1]
	runs, missing, err := plan.RunsPartial(units[:len(units)-1])
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 1 || missing[0] != lost.ID {
		t.Fatalf("missing %v, want [%s]", missing, lost.ID)
	}
	full, err := plan.Runs(units)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != len(full)-1 {
		t.Fatalf("partial runs %d, full %d", len(runs), len(full))
	}
	for _, r := range runs {
		if r.Name == lost.Trace {
			t.Errorf("incomplete group %s leaked into the partial runs", lost.Trace)
		}
	}
	// With everything present RunsPartial degenerates to Runs.
	runs, missing, err = plan.RunsPartial(units)
	if err != nil || len(missing) != 0 || len(runs) != len(full) {
		t.Fatalf("complete RunsPartial: runs %d missing %v err %v", len(runs), missing, err)
	}
}

// TestRunsPartialAllUnitsDead pins the worst case a coordinated sweep
// can legitimately end in — every unit dead-lettered: RunsPartial must
// return zero runs and every plan unit ID, sorted, with no error. This
// is the input the partial-report path renders, so a panic or a
// zero-value table here would take the failure report down with the
// sweep.
func TestRunsPartialAllUnitsDead(t *testing.T) {
	plan, err := rmwtso.DefaultPlan(shardOptions())
	if err != nil {
		t.Fatal(err)
	}
	for name, input := range map[string][]rmwtso.UnitResult{"nil": nil, "empty": {}} {
		runs, missing, err := plan.RunsPartial(input)
		if err != nil {
			t.Fatalf("%s input: %v", name, err)
		}
		if len(runs) != 0 {
			t.Fatalf("%s input produced %d runs from zero results", name, len(runs))
		}
		if len(missing) != plan.Len() {
			t.Fatalf("%s input: %d missing IDs, want all %d", name, len(missing), plan.Len())
		}
		if !sort.SliceIsSorted(missing, func(i, j int) bool { return missing[i] < missing[j] }) {
			t.Fatalf("%s input: missing IDs not sorted: %v", name, missing)
		}
		ids := map[rmwtso.UnitID]bool{}
		for _, u := range plan.Units() {
			ids[u.ID] = true
		}
		for _, id := range missing {
			if !ids[id] {
				t.Fatalf("%s input: alien missing ID %s", name, id)
			}
		}
	}
	// Alien and result-less units must still be loud errors, not silently
	// folded into the missing list.
	if _, _, err := plan.RunsPartial([]rmwtso.UnitResult{{Unit: "feedfeedfeedfeed"}}); err == nil {
		t.Fatal("alien unit accepted by RunsPartial")
	}
	u := plan.Units()[0]
	noResult := []rmwtso.UnitResult{{Unit: u.ID, Trace: u.Trace, Type: u.Type, Seed: u.Seed}}
	if _, _, err := plan.RunsPartial(noResult); err == nil {
		t.Fatal("result-less unit accepted by RunsPartial")
	}
}
