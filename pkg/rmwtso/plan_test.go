package rmwtso_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/pkg/rmwtso"
)

// planTable renders a plan as the stable tab-separated listing pinned by
// the golden file: one line per unit with its ID, trace, type and seed.
func planTable(p *rmwtso.Plan) string {
	var b strings.Builder
	b.WriteString("# Golden unit IDs for the default sweep plan (DefaultOptions).\n")
	b.WriteString("# Regenerate with: go test ./pkg/rmwtso -run TestPlanGolden -update\n")
	b.WriteString("# A diff here means unit identities moved: cached results and in-flight\n")
	b.WriteString("# shard artifacts no longer address the same work. Bless it only on purpose.\n")
	for _, u := range p.Units() {
		fmt.Fprintf(&b, "%s\t%s\t%s\t%d\n", u.ID, u.Trace, u.Type, u.Seed)
	}
	return b.String()
}

// TestPlanGolden pins the unit IDs of the default plan. Unit IDs derive
// from the simcache key material, so any change that re-keys the cache
// (config digest, workload digest, schema version) shows up here as a
// reviewable diff instead of a silent fleet-wide identity shift.
func TestPlanGolden(t *testing.T) {
	plan, err := rmwtso.DefaultPlan(rmwtso.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := planTable(plan)
	path := filepath.Join("testdata", "plan.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if got != string(want) {
		gotLines := strings.Split(got, "\n")
		wantLines := strings.Split(string(want), "\n")
		for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
			var g, w string
			if i < len(gotLines) {
				g = gotLines[i]
			}
			if i < len(wantLines) {
				w = wantLines[i]
			}
			if g != w {
				t.Fatalf("plan drifted from %s at line %d:\n got: %s\nwant: %s\n(bless intentional re-keying with -update)",
					path, i+1, g, w)
			}
		}
		t.Fatalf("plan drifted from %s (no differing line, e.g. trailing whitespace); bless with -update", path)
	}
}

// TestPlanDeterminism asserts two independently built plans agree on
// every unit and on the fingerprint, and that unit IDs are unique.
func TestPlanDeterminism(t *testing.T) {
	o := rmwtso.QuickOptions()
	a, err := rmwtso.DefaultPlan(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rmwtso.DefaultPlan(o)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprints differ: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
	au, bu := a.Units(), b.Units()
	if len(au) != len(bu) {
		t.Fatalf("unit counts differ: %d vs %d", len(au), len(bu))
	}
	seen := map[rmwtso.UnitID]bool{}
	for i := range au {
		if au[i].ID != bu[i].ID || au[i].Trace != bu[i].Trace || au[i].Type != bu[i].Type {
			t.Fatalf("unit %d differs: %+v vs %+v", i, au[i], bu[i])
		}
		if seen[au[i].ID] {
			t.Fatalf("duplicate unit ID %s", au[i].ID)
		}
		seen[au[i].ID] = true
	}
}

// TestPlanShardInvariance is the sharding property test: for several
// shard counts, the shards partition the plan exactly — every unit is
// covered by exactly one shard — and unit IDs are invariant: the ID a
// unit has inside any shard selection equals its ID in the full plan.
func TestPlanShardInvariance(t *testing.T) {
	plan, err := rmwtso.DefaultPlan(rmwtso.QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	all := plan.Select(rmwtso.FullShard())
	if len(all) != plan.Len() {
		t.Fatalf("full shard selects %d of %d units", len(all), plan.Len())
	}
	for _, n := range []int{1, 2, 3, 4, 7, plan.Len(), plan.Len() + 5} {
		covered := map[rmwtso.UnitID]int{}
		for i := 0; i < n; i++ {
			for _, u := range plan.Select(rmwtso.Shard{Index: i, Count: n}) {
				covered[u.ID]++
				if full, ok := plan.Unit(u.ID); !ok || full.Type != u.Type || full.Trace != u.Trace {
					t.Fatalf("n=%d: shard unit %s does not match its plan entry", n, u.ID)
				}
			}
		}
		if len(covered) != plan.Len() {
			t.Fatalf("n=%d: %d of %d units covered", n, len(covered), plan.Len())
		}
		for id, c := range covered {
			if c != 1 {
				t.Fatalf("n=%d: unit %s covered %d times", n, id, c)
			}
		}
	}

	// A unit-ID predicate composes with the round-robin selector.
	want := all[0].ID
	only := rmwtso.Shard{Only: func(id rmwtso.UnitID) bool { return id == want }}
	sel := plan.Select(only)
	if len(sel) != 1 || sel[0].ID != want {
		t.Fatalf("predicate shard selected %d units", len(sel))
	}
}

// TestShardValidation covers the selector's error cases and parser.
func TestShardValidation(t *testing.T) {
	for _, bad := range []rmwtso.Shard{
		{Index: -1, Count: 3},
		{Index: 3, Count: 3},
		{Index: 1, Count: 0},
		{Count: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("shard %+v validated", bad)
		}
	}
	if err := rmwtso.FullShard().Validate(); err != nil {
		t.Errorf("full shard rejected: %v", err)
	}
	s, err := rmwtso.ParseShard("2/4")
	if err != nil || s.Index != 2 || s.Count != 4 {
		t.Errorf("ParseShard(2/4) = %+v, %v", s, err)
	}
	for _, bad := range []string{"", "2", "a/4", "2/b", "4/4", "-1/4", "0/0"} {
		if _, err := rmwtso.ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted", bad)
		}
	}
}
