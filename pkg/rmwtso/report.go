package rmwtso

import (
	"io"

	"repro/internal/experiments"
)

// Report is the typed, serializable model of the paper's full evaluation
// — Tables 1-4, Fig. 11(a)/(b) and the headline summary — the single
// structure every output format encodes. Build one from finished runs
// (BuildReport), either a local sweep's or runs reconstructed from shard
// artifacts (MergeShards): a merged report is deeply equal to an
// unsharded run's, so every encoding is byte-identical too.
type Report = experiments.Report

// ReportSchemaVersion versions the serialized Report model; decoders
// reject reports of a schema they do not understand.
const ReportSchemaVersion = experiments.ReportSchemaVersion

// ReportEncoder renders a Report to a writer in one output format.
// Encodings are deterministic: equal reports produce byte-identical
// output.
type ReportEncoder = experiments.Encoder

// The report output formats of NewReportEncoder and the binaries'
// -format flag: paper-layout fixed-width tables and bar charts, one
// indented JSON document, or multi-section CSV (sections separated by
// `# name` comment lines).
const (
	FormatASCII = experiments.FormatASCII
	FormatJSON  = experiments.FormatJSON
	FormatCSV   = experiments.FormatCSV
)

// ReportFormats lists the supported report output formats.
func ReportFormats() []string { return experiments.Formats() }

// NewReportEncoder returns the encoder for a format name ("ascii",
// "json" or "csv").
func NewReportEncoder(format string) (ReportEncoder, error) { return experiments.NewEncoder(format) }

// BuildReport assembles the evaluation report: the semantics sections
// (Tables 1 and 4) are model checked locally with the options'
// EnumWorkers — they are exact and identical on every machine — while
// the simulation sections (Table 3, Fig. 11, summary) derive from the
// runs, which may come from RunBenchmarks, Plan.Runs or MergeShards.
func BuildReport(o Options, runs []*BenchmarkRun) (*Report, error) {
	return experiments.BuildReport(o, runs)
}

// EncodeReport renders the report to w in the named format.
func EncodeReport(w io.Writer, r *Report, format string) error {
	enc, err := NewReportEncoder(format)
	if err != nil {
		return err
	}
	return enc.Encode(w, r)
}

// DecodeReportJSON parses a JSON-encoded report (the -format json
// output), rejecting schemas this build does not understand.
func DecodeReportJSON(data []byte) (*Report, error) {
	return experiments.DecodeReportJSON(data)
}
