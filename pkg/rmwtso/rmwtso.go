// Package rmwtso is the public API of the conf_pldi_RajaramNSE13
// reproduction ("Fast RMWs for TSO"). It is the single supported surface:
// every binary and example in this repository is written against it, and
// the internal packages behind it (memmodel, core, litmus, cpp11, sim,
// workload, experiments) may change freely between releases.
//
// The package exposes three layers of the reproduction:
//
//   - the semantics layer: litmus programs, the TSO-with-RMW memory models
//     (type-1/2/3 atomicity) and exhaustive model checking
//     (EnumerateExecutionsFunc, Model, Suite);
//   - the implementation layer: the cycle-approximate chip-multiprocessor
//     simulator and its trace/workload generators (Simulate, Generator,
//     Fig10Trace);
//   - the evaluation layer: the paper's tables and figures
//     (Runner.RunTable3Benchmarks, RenderTable1, ...).
//
// Work is driven through a Runner configured with functional options:
//
//	r := rmwtso.NewRunner(
//		rmwtso.WithContext(ctx),
//		rmwtso.WithParallelism(8),
//		rmwtso.WithObserver(func(e rmwtso.Event) { ... }),
//	)
//	results, err := r.CheckSuite()
//
// The Runner fans work units (one litmus verdict, one mapping validation,
// one simulator run) across a goroutine pool, streams every finished unit
// to the observer as it completes, and still returns the aggregate in a
// deterministic order. Litmus tests and C/C++11 validation programs live
// in name-keyed registries with glob filtering:
//
//	results, err := rmwtso.Suite().Filter("SB*").Run(rmwtso.WithParallelism(4))
package rmwtso

import (
	"repro/internal/core"
	"repro/internal/stats"
)

// AtomicityType selects one of the paper's three RMW atomicity
// definitions (§2).
type AtomicityType = core.AtomicityType

// The three RMW atomicity types of the paper: type-1 is the conventional
// fence-like RMW, type-2 retires the RMW before the write buffer drains,
// and type-3 additionally needs only read permission for the read half.
const (
	Type1 = core.Type1
	Type2 = core.Type2
	Type3 = core.Type3
)

// AllTypes lists the three atomicity types in order.
func AllTypes() []AtomicityType { return core.AllTypes() }

// ParseAtomicityType parses "type-1", "type-2" or "type-3".
func ParseAtomicityType(s string) (AtomicityType, error) { return core.ParseAtomicityType(s) }

// PercentReduction returns how much smaller next is than base, in percent.
func PercentReduction(base, next float64) float64 { return stats.PercentReduction(base, next) }
