package rmwtso

import (
	"context"

	"repro/internal/engine"
)

// Event is one streamed result from a Runner: exactly one field is
// non-nil. Events are delivered to the observer serially (never
// concurrently), in completion order, as soon as each work unit finishes.
type Event = engine.Event

// Observer receives streamed events. It is called from worker goroutines
// but never concurrently, so it needs no locking of its own.
type Observer = engine.Observer

// ChannelObserver adapts a channel into an Observer. The caller owns the
// channel and must drain it; sends block the pool when the channel is
// unbuffered.
func ChannelObserver(ch chan<- Event) Observer { return engine.ChannelObserver(ch) }

// SimRun is one simulator run of a sweep: one trace under one RMW type.
// Unit carries the run's stable plan-unit identifier (empty for runs
// outside the unit model), and CacheHit marks a run served from the
// Runner's result cache without executing the simulator.
type SimRun = engine.SimRun

// Option configures a Runner.
type Option = engine.Option

// WithContext makes the Runner honour ctx: cancellation stops the sweep
// before the next work unit and the in-flight results are discarded; the
// Runner method returns ctx's error.
func WithContext(ctx context.Context) Option { return engine.WithContext(ctx) }

// WithParallelism sets the worker-pool size. Values below 1 mean 1; the
// default is runtime.GOMAXPROCS(0).
func WithParallelism(n int) Option { return engine.WithParallelism(n) }

// WithObserver streams every finished work unit to fn as it completes,
// in completion order. fn is never called concurrently.
func WithObserver(fn Observer) Option { return engine.WithObserver(fn) }

// WithEnumWorkers sets how many goroutines each single litmus verdict or
// mapping validation fans its candidate enumeration across: the rf×ws
// choice space is split into contiguous index ranges, one per worker,
// with the validity check running inside the workers. The default, 0,
// picks per program via the candidate-count heuristic — GOMAXPROCS for
// IRIW-class programs (at least memmodel.AutoEnumThreshold candidates), 1
// for small ones, so small suites don't pay goroutine overhead while one
// huge verdict no longer serializes on a single core. This parallelism is
// inside one work unit and multiplies with WithParallelism's unit-level
// pool.
func WithEnumWorkers(n int) Option { return engine.WithEnumWorkers(n) }

// WithCache makes the Runner consult (and fill) a content-addressed
// result cache: litmus verdicts in CheckTests/CheckSuite, and simulator
// runs in RunBenchmarks and the Cached sweep variants. Hits skip the
// computation entirely and are flagged on the streamed event (SimRun and
// TestResult carry a CacheHit field); results are identical either way.
// A nil cache disables caching (the default).
func WithCache(c *Cache) Option { return engine.WithCache(c) }

// WithRMWTypes restricts the atomicity types the Runner checks or sweeps.
// The default is all three types.
func WithRMWTypes(types ...AtomicityType) Option { return engine.WithRMWTypes(types...) }

// Job is one unit of work submitted to the execution engine: exactly one
// of Plan or Litmus must be set, with Shard restricting the job to the
// units it covers.
type Job = engine.Job

// LitmusGrid is the litmus-verdict form of a Job: the (test, type) grid
// over the Runner's configured atomicity types.
type LitmusGrid = engine.LitmusGrid

// JobResult is the outcome of one finished job: Shard for plan jobs,
// Verdicts for litmus jobs.
type JobResult = engine.JobResult

// JobHandle tracks one submitted job: Wait blocks for the result, Done
// exposes completion for select loops, and Metrics snapshots the job's
// progress counters at any time.
type JobHandle = engine.JobHandle

// Metrics is a point-in-time snapshot of the execution counters: unit
// throughput, cache effectiveness, and — for coordinated sweeps — the
// queue's lease/retry/DLQ state.
type Metrics = engine.Metrics

// WorkerMetrics is one coordinated worker's traffic in a Metrics
// snapshot.
type WorkerMetrics = engine.WorkerMetrics

// DeadLetterMetrics is one dead-lettered unit with its failure history in
// a Metrics snapshot.
type DeadLetterMetrics = engine.DeadLetterMetrics

// ResultStore is the engine's result-lookup view: unit results of every
// absorbed shard artifact by unit ID, backed by the result cache for
// full-key lookups.
type ResultStore = engine.ResultStore

// Runner is the public face of the execution engine (internal/engine): it
// fans work units — litmus verdicts, mapping validations, simulator
// runs — across a goroutine pool, streaming each finished unit to the
// observer while returning aggregates in deterministic order. A Runner is
// safe for repeated use; each method call runs its own pool.
type Runner struct {
	eng *engine.Engine
}

// NewRunner builds a Runner from the options.
func NewRunner(opts ...Option) *Runner {
	return &Runner{eng: engine.New(opts...)}
}

// Types returns the atomicity types the Runner is configured with.
func (r *Runner) Types() []AtomicityType { return r.eng.Types() }

// Submit starts a job on the execution engine and returns a handle for
// it. A nil ctx uses the Runner's context (WithContext). The job executes
// asynchronously; all execution errors surface through the handle's Wait,
// and every finished unit streams to the observer as it completes. A
// malformed job (neither or both of Plan and Litmus) is rejected
// synchronously.
func (r *Runner) Submit(ctx context.Context, job Job) (*JobHandle, error) {
	return r.eng.Submit(ctx, job)
}

// Metrics snapshots the Runner's engine-wide execution counters across
// every job and sweep it has run.
func (r *Runner) Metrics() Metrics { return r.eng.Metrics() }

// Results returns the Runner's result store: a lookup view over the
// configured cache plus every shard artifact the engine has produced.
func (r *Runner) Results() *ResultStore { return r.eng.Results() }

// CheckTests model-checks every test under every configured RMW type.
// Each (test, type) verdict is one work unit; finished verdicts stream to
// the observer immediately. The returned slice is ordered (test, type)
// regardless of parallelism or completion order.
func (r *Runner) CheckTests(tests ...*Test) ([]TestResult, error) {
	return r.eng.CheckTests(tests...)
}

// CheckTestsSharded is CheckTests restricted to the verdict units a
// shard selects, so a fleet can split one suite across processes exactly
// like a simulation plan: the (test, type) grid is enumerated in
// deterministic order, each unit's stable ID is the UnitID of its
// content-addressed verdict key, and the round-robin selector (or unit-ID
// predicate) keeps a deterministic subset. The returned slice holds only
// the selected units, still in (test, type) order, and every result
// carries its unit ID for correlation.
func (r *Runner) CheckTestsSharded(shard Shard, tests ...*Test) ([]TestResult, error) {
	return r.eng.CheckTestsSharded(shard, tests...)
}

// CheckSuite model-checks the full registered litmus suite; shorthand for
// CheckTests over Suite().Tests().
func (r *Runner) CheckSuite() ([]TestResult, error) {
	return r.CheckTests(Suite().Tests()...)
}

// ValidateMappings validates every Table 4 mapping under every configured
// RMW type for each program. Each (program, mapping, type) combination is
// one work unit; the returned slice is ordered (program, mapping, type).
func (r *Runner) ValidateMappings(programs ...*Cpp11Program) ([]MappingResult, error) {
	return r.eng.ValidateMappings(programs...)
}

// SweepTrace simulates one trace under every configured RMW type, one
// run per work unit. The returned slice is ordered like the configured
// types. The trace is shared read-only across the pool; this is
// SweepSource over the trace's own source, since a materialized run is
// defined as replaying the trace's streams.
func (r *Runner) SweepTrace(cfg SimConfig, trace *Trace) ([]SimRun, error) {
	return r.eng.SweepTrace(cfg, trace)
}

// SweepSource simulates one streaming trace source under every configured
// RMW type, one run per work unit, without ever materializing the trace:
// each run pulls fresh per-core streams from the source, so peak memory is
// bounded by the source's window regardless of trace length. The source's
// Stream method must return independent iterators (Generator.Source and
// Trace.Source both do), since the per-type runs consume it concurrently.
// The returned slice is ordered like the configured types.
func (r *Runner) SweepSource(cfg SimConfig, src TraceSource) ([]SimRun, error) {
	return r.eng.SweepSource(cfg, src)
}

// SweepSourceCached is SweepSource consulting the Runner's cache
// (WithCache), with the workload seed and scale that produced src
// completing each run's cache key. Hits replay stored results (flagged
// CacheHit on the run and its streamed event) without simulating; misses
// run and are stored. Without a configured cache it behaves exactly like
// SweepSource.
func (r *Runner) SweepSourceCached(cfg SimConfig, src TraceSource, seed int64, scale float64) ([]SimRun, error) {
	return r.eng.SweepSourceCached(cfg, src, seed, scale)
}

// SweepTraces simulates every (trace, configured type) pair across the
// pool. The returned slice is ordered (trace, type).
func (r *Runner) SweepTraces(cfg SimConfig, traces ...*Trace) ([]SimRun, error) {
	return r.eng.SweepTraces(cfg, traces...)
}
