package rmwtso

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/cpp11"
	"repro/internal/sim"
	"repro/internal/simcache"
)

// Event is one streamed result from a Runner: exactly one field is
// non-nil. Events are delivered to the observer serially (never
// concurrently), in completion order, as soon as each work unit finishes.
type Event struct {
	// Litmus is set when the unit was one litmus verdict.
	Litmus *TestResult
	// Mapping is set when the unit was one C/C++11 mapping validation.
	Mapping *MappingResult
	// Sim is set when the unit was one simulator run.
	Sim *SimRun
	// Coord is set for coordination state transitions of a dynamically
	// coordinated sweep (lease, requeue, dead-letter, …), streamed
	// alongside the SimRun events of the same sweep.
	Coord *CoordEvent
}

// Observer receives streamed events. It is called from worker goroutines
// but never concurrently, so it needs no locking of its own.
type Observer func(Event)

// ChannelObserver adapts a channel into an Observer. The caller owns the
// channel and must drain it; sends block the pool when the channel is
// unbuffered.
func ChannelObserver(ch chan<- Event) Observer {
	return func(e Event) { ch <- e }
}

// SimRun is one simulator run of a sweep: one trace under one RMW type.
type SimRun struct {
	// Unit is the run's stable plan-unit identifier (derived from the
	// content-addressed cache key), so streamed progress events correlate
	// with Plan entries without reconstructing the (trace, type, seed)
	// tuple. It is empty for runs outside the unit model (SweepTraces and
	// uncacheable SweepSource runs, whose key material is unknown).
	Unit UnitID
	// Trace is the name of the simulated trace.
	Trace string
	// Type is the RMW atomicity type the run used.
	Type AtomicityType
	// Result holds the run's statistics.
	Result *SimResult
	// CacheHit marks a run served from the Runner's result cache: no
	// simulator executed for it. Observers can count hits to verify a
	// warm sweep did zero simulation work.
	CacheHit bool
}

// options collects the Runner configuration set by functional options.
type options struct {
	ctx         context.Context
	parallelism int
	enumWorkers int
	observer    Observer
	types       []AtomicityType
	cache       *simcache.Cache
	coord       *CoordinationConfig
}

// Option configures a Runner.
type Option func(*options)

// WithContext makes the Runner honour ctx: cancellation stops the sweep
// before the next work unit and the in-flight results are discarded; the
// Runner method returns ctx's error.
func WithContext(ctx context.Context) Option {
	return func(o *options) { o.ctx = ctx }
}

// WithParallelism sets the worker-pool size. Values below 1 mean 1; the
// default is runtime.GOMAXPROCS(0).
func WithParallelism(n int) Option {
	return func(o *options) { o.parallelism = n }
}

// WithObserver streams every finished work unit to fn as it completes,
// in completion order. fn is never called concurrently.
func WithObserver(fn Observer) Option {
	return func(o *options) { o.observer = fn }
}

// WithEnumWorkers sets how many goroutines each single litmus verdict or
// mapping validation fans its candidate enumeration across: the rf×ws
// choice space is split into contiguous index ranges, one per worker,
// with the validity check running inside the workers. The default, 0,
// picks per program via the candidate-count heuristic — GOMAXPROCS for
// IRIW-class programs (at least memmodel.AutoEnumThreshold candidates), 1
// for small ones, so small suites don't pay goroutine overhead while one
// huge verdict no longer serializes on a single core. This parallelism is
// inside one work unit and multiplies with WithParallelism's unit-level
// pool.
func WithEnumWorkers(n int) Option {
	return func(o *options) { o.enumWorkers = n }
}

// WithCache makes the Runner consult (and fill) a content-addressed
// result cache: litmus verdicts in CheckTests/CheckSuite, and simulator
// runs in RunBenchmarks and the Cached sweep variants. Hits skip the
// computation entirely and are flagged on the streamed event (SimRun and
// TestResult carry a CacheHit field); results are identical either way.
// A nil cache disables caching (the default).
func WithCache(c *Cache) Option {
	return func(o *options) { o.cache = c }
}

// WithRMWTypes restricts the atomicity types the Runner checks or sweeps.
// The default is all three types.
func WithRMWTypes(types ...AtomicityType) Option {
	return func(o *options) { o.types = append([]AtomicityType(nil), types...) }
}

// Runner fans work units — litmus verdicts, mapping validations,
// simulator runs — across a goroutine pool, streaming each finished unit
// to the observer while returning aggregates in deterministic order. A
// Runner is safe for repeated use; each method call runs its own pool.
type Runner struct {
	opts   options
	emitMu sync.Mutex
}

// NewRunner builds a Runner from the options.
func NewRunner(opts ...Option) *Runner {
	o := options{
		ctx:         context.Background(),
		parallelism: runtime.GOMAXPROCS(0),
		types:       AllTypes(),
	}
	for _, f := range opts {
		f(&o)
	}
	if o.parallelism < 1 {
		o.parallelism = 1
	}
	if len(o.types) == 0 {
		o.types = AllTypes()
	}
	return &Runner{opts: o}
}

// Types returns the atomicity types the Runner is configured with.
func (r *Runner) Types() []AtomicityType {
	return append([]AtomicityType(nil), r.opts.types...)
}

// emit delivers one event to the observer, serialized across workers.
func (r *Runner) emit(e Event) {
	if r.opts.observer == nil {
		return
	}
	r.emitMu.Lock()
	defer r.emitMu.Unlock()
	r.opts.observer(e)
}

// runUnits executes run(0..n-1) on the worker pool under the Runner's
// own context. It returns the context's error if cancelled, otherwise the
// first unit error. Units are claimed in order but finish in any order;
// each unit writes only its own result slot, so aggregates stay
// deterministic.
func (r *Runner) runUnits(n int, run func(int) error) error {
	return r.runUnitsCtx(r.opts.ctx, n, run)
}

// runUnitsCtx is runUnits under an explicit context (RunPlan accepts a
// per-call context on top of the Runner's).
func (r *Runner) runUnitsCtx(ctx context.Context, n int, run func(int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	workers := r.opts.parallelism
	if workers > n {
		workers = n
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}

	next := make(chan int)
	go func() {
		defer close(next)
		for i := 0; i < n; i++ {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil || failed() {
					continue
				}
				if err := run(i); err != nil {
					setErr(err)
				}
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}

// CheckTests model-checks every test under every configured RMW type.
// Each (test, type) verdict is one work unit; finished verdicts stream to
// the observer immediately. The returned slice is ordered (test, type)
// regardless of parallelism or completion order.
func (r *Runner) CheckTests(tests ...*Test) ([]TestResult, error) {
	return r.CheckTestsSharded(FullShard(), tests...)
}

// CheckTestsSharded is CheckTests restricted to the verdict units a
// shard selects, so a fleet can split one suite across processes exactly
// like a simulation plan: the (test, type) grid is enumerated in
// deterministic order, each unit's stable ID is the UnitID of its
// content-addressed verdict key, and the round-robin selector (or unit-ID
// predicate) keeps a deterministic subset. The returned slice holds only
// the selected units, still in (test, type) order, and every result
// carries its unit ID for correlation.
func (r *Runner) CheckTestsSharded(shard Shard, tests ...*Test) ([]TestResult, error) {
	if err := shard.Validate(); err != nil {
		return nil, err
	}
	types := r.opts.types
	type unit struct {
		ti, yi int
		id     UnitID
	}
	units := make([]unit, 0, len(tests)*len(types))
	pos := 0
	for ti := range tests {
		for yi := range types {
			id := UnitID(LitmusCacheKey(tests[ti], types[yi]).UnitID())
			if shard.Covers(pos, id) {
				units = append(units, unit{ti, yi, id})
			}
			pos++
		}
	}
	results := make([]TestResult, len(units))
	err := r.runUnits(len(units), func(i int) error {
		u := units[i]
		if r.opts.cache != nil {
			if res, ok := cachedVerdict(r.opts.cache, tests[u.ti], types[u.yi]); ok {
				res.Unit = string(u.id)
				results[i] = res
				r.emit(Event{Litmus: &results[i]})
				return nil
			}
		}
		res, err := tests[u.ti].RunParallel(r.opts.ctx, types[u.yi], r.opts.enumWorkers)
		if err != nil {
			return err
		}
		if r.opts.cache != nil {
			storeVerdict(r.opts.cache, res)
		}
		res.Unit = string(u.id)
		results[i] = res
		r.emit(Event{Litmus: &results[i]})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// CheckSuite model-checks the full registered litmus suite; shorthand for
// CheckTests over Suite().Tests().
func (r *Runner) CheckSuite() ([]TestResult, error) {
	return r.CheckTests(Suite().Tests()...)
}

// ValidateMappings validates every Table 4 mapping under every configured
// RMW type for each program. Each (program, mapping, type) combination is
// one work unit; the returned slice is ordered (program, mapping, type).
func (r *Runner) ValidateMappings(programs ...*Cpp11Program) ([]MappingResult, error) {
	mappings := AllMappings()
	types := r.opts.types
	type unit struct{ pi, mi, yi int }
	units := make([]unit, 0, len(programs)*len(mappings)*len(types))
	for pi := range programs {
		for mi := range mappings {
			for yi := range types {
				units = append(units, unit{pi, mi, yi})
			}
		}
	}
	results := make([]MappingResult, len(units))
	err := r.runUnits(len(units), func(i int) error {
		u := units[i]
		res, err := cpp11.ValidateMappingParallel(r.opts.ctx, programs[u.pi], mappings[u.mi], types[u.yi], r.opts.enumWorkers)
		if err != nil {
			return err
		}
		results[i] = res
		r.emit(Event{Mapping: &results[i]})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// SweepTrace simulates one trace under every configured RMW type, one
// run per work unit. The returned slice is ordered like the configured
// types. The trace is shared read-only across the pool; this is
// SweepSource over the trace's own source, since a materialized run is
// defined as replaying the trace's streams.
func (r *Runner) SweepTrace(cfg SimConfig, trace *Trace) ([]SimRun, error) {
	return r.SweepSource(cfg, trace.Source())
}

// SweepSource simulates one streaming trace source under every configured
// RMW type, one run per work unit, without ever materializing the trace:
// each run pulls fresh per-core streams from the source, so peak memory is
// bounded by the source's window regardless of trace length. The source's
// Stream method must return independent iterators (Generator.Source and
// Trace.Source both do), since the per-type runs consume it concurrently.
// The returned slice is ordered like the configured types.
func (r *Runner) SweepSource(cfg SimConfig, src TraceSource) ([]SimRun, error) {
	return r.sweepSource(cfg, src, nil)
}

// sweepKeyMeta carries the workload identity a sweep needs to derive
// cache keys; nil disables caching for the sweep.
type sweepKeyMeta struct {
	seed  int64
	scale float64
}

// SweepSourceCached is SweepSource consulting the Runner's cache
// (WithCache), with the workload seed and scale that produced src
// completing each run's cache key. Hits replay stored results (flagged
// CacheHit on the run and its streamed event) without simulating; misses
// run and are stored. Without a configured cache it behaves exactly like
// SweepSource.
func (r *Runner) SweepSourceCached(cfg SimConfig, src TraceSource, seed int64, scale float64) ([]SimRun, error) {
	return r.sweepSource(cfg, src, &sweepKeyMeta{seed: seed, scale: scale})
}

// sweepSource is the shared per-type sweep; meta enables cache lookups.
func (r *Runner) sweepSource(cfg SimConfig, src TraceSource, meta *sweepKeyMeta) ([]SimRun, error) {
	types := r.opts.types
	cache := r.opts.cache
	if meta == nil {
		cache = nil
	}
	runs := make([]SimRun, len(types))
	err := r.runUnits(len(types), func(i int) error {
		run := cfg.WithRMWType(types[i])
		if err := run.Validate(); err != nil {
			return err
		}
		var key simcache.Key
		var unit UnitID
		if meta != nil {
			// The unit identity exists whenever the key material does,
			// cache or no cache, so observers can correlate events with a
			// plan built from the same inputs.
			key = simcache.SimKey(run, src, meta.seed, meta.scale)
			unit = UnitID(key.UnitID())
		}
		if cache != nil {
			// Deadlocked entries are never stored, but a foreign one is
			// also never served: deadlocks always re-execute.
			if res, ok := cache.GetSim(key); ok && !res.Deadlocked {
				runs[i] = SimRun{Unit: unit, Trace: src.Name(), Type: types[i], Result: res, CacheHit: true}
				r.emit(Event{Sim: &runs[i]})
				return nil
			}
		}
		s, err := sim.New(run)
		if err != nil {
			return err
		}
		res, err := s.RunSource(src)
		if err != nil {
			return err
		}
		if cache != nil && !res.Deadlocked {
			_ = cache.PutSim(key, res)
		}
		runs[i] = SimRun{Unit: unit, Trace: src.Name(), Type: types[i], Result: res}
		r.emit(Event{Sim: &runs[i]})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return runs, nil
}

// SweepTraces simulates every (trace, configured type) pair across the
// pool. The returned slice is ordered (trace, type).
func (r *Runner) SweepTraces(cfg SimConfig, traces ...*Trace) ([]SimRun, error) {
	types := r.opts.types
	type unit struct{ ti, yi int }
	units := make([]unit, 0, len(traces)*len(types))
	for ti := range traces {
		for yi := range types {
			units = append(units, unit{ti, yi})
		}
	}
	runs := make([]SimRun, len(units))
	err := r.runUnits(len(units), func(i int) error {
		u := units[i]
		s, err := sim.New(cfg.WithRMWType(types[u.yi]))
		if err != nil {
			return err
		}
		res, err := s.Run(traces[u.ti])
		if err != nil {
			return err
		}
		runs[i] = SimRun{Trace: traces[u.ti].Name, Type: types[u.yi], Result: res}
		r.emit(Event{Sim: &runs[i]})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return runs, nil
}
