package rmwtso_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/pkg/rmwtso"
)

// resultKey identifies one verdict independent of completion order.
func resultKey(r rmwtso.TestResult) string {
	return fmt.Sprintf("%s|%s", r.Test.Name, r.Atomicity)
}

// TestParallelMatchesSequential runs the full litmus suite sequentially
// and at parallelism 8 (under -race in CI) and asserts the verdict sets
// are identical: same tests, same truth values, same candidate and valid
// execution counts, order-independent.
func TestParallelMatchesSequential(t *testing.T) {
	seq, err := rmwtso.Suite().Run(rmwtso.WithParallelism(1))
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	par, err := rmwtso.Suite().Run(rmwtso.WithParallelism(8))
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if len(seq) == 0 {
		t.Fatal("sequential run returned no results")
	}
	if len(par) != len(seq) {
		t.Fatalf("parallel run returned %d results, sequential %d", len(par), len(seq))
	}

	type verdict struct {
		holds, matches bool
		valid, cands   int
		outcomes       int
	}
	index := func(results []rmwtso.TestResult) map[string]verdict {
		m := map[string]verdict{}
		for _, r := range results {
			m[resultKey(r)] = verdict{
				holds:    r.Holds,
				matches:  r.Matches,
				valid:    r.ValidExecutions,
				cands:    r.Candidates,
				outcomes: r.Outcomes.Len(),
			}
		}
		return m
	}
	want, got := index(seq), index(par)
	if len(got) != len(want) {
		t.Fatalf("parallel run has %d distinct verdicts, sequential %d", len(got), len(want))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("verdict %s missing from parallel run", key)
			continue
		}
		if g != w {
			t.Errorf("verdict %s differs: parallel %+v, sequential %+v", key, g, w)
		}
	}
	for _, r := range par {
		if !r.Matches {
			t.Errorf("verdict %s does not match the recorded expectation", resultKey(r))
		}
	}
}

// TestObserverStreamsEveryVerdict checks that the observer sees exactly
// one event per work unit, serially, and that each event carries a litmus
// verdict.
func TestObserverStreamsEveryVerdict(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	results, err := rmwtso.Suite().Run(
		rmwtso.WithParallelism(8),
		rmwtso.WithObserver(func(e rmwtso.Event) {
			if e.Litmus == nil {
				t.Error("non-litmus event from a suite run")
				return
			}
			mu.Lock()
			seen = append(seen, resultKey(*e.Litmus))
			mu.Unlock()
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(results) {
		t.Fatalf("observer saw %d events, runner returned %d results", len(seen), len(results))
	}
	dup := map[string]bool{}
	for _, k := range seen {
		if dup[k] {
			t.Errorf("verdict %s streamed twice", k)
		}
		dup[k] = true
	}
}

// TestContextCancelStopsSweep cancels a suite sweep from its observer
// after the first verdict and asserts the run stops early with the
// context's error instead of completing all units.
func TestContextCancelStopsSweep(t *testing.T) {
	total := rmwtso.Suite().Len() * len(rmwtso.AllTypes())
	if total < 4 {
		t.Fatalf("suite too small for a meaningful cancellation test: %d units", total)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := 0
	results, err := rmwtso.Suite().Run(
		rmwtso.WithContext(ctx),
		rmwtso.WithParallelism(2),
		rmwtso.WithObserver(func(rmwtso.Event) {
			events++ // observer calls are serialized by the Runner
			if events == 1 {
				cancel()
			}
		}),
	)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned error %v, want context.Canceled", err)
	}
	if results != nil {
		t.Fatalf("cancelled run returned %d results, want none", len(results))
	}
	// At most the in-flight units (one per worker) finish after cancel.
	if events >= total {
		t.Fatalf("observer saw %d of %d events despite cancellation", events, total)
	}
}

// TestPreCancelledContext checks that a runner with an already-cancelled
// context does no work at all.
func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	events := 0
	_, err := rmwtso.Suite().Run(
		rmwtso.WithContext(ctx),
		rmwtso.WithObserver(func(rmwtso.Event) { events++ }),
	)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got error %v, want context.Canceled", err)
	}
	if events != 0 {
		t.Fatalf("observer saw %d events with a pre-cancelled context", events)
	}
}

// TestSuiteFilter exercises the registry-backed glob filtering.
func TestSuiteFilter(t *testing.T) {
	names := rmwtso.Suite().Filter("SB*").Names()
	if len(names) != 2 || names[0] != "SB" || names[1] != "SB+fences" {
		t.Fatalf("Filter(SB*) = %v, want [SB SB+fences]", names)
	}
	paper := rmwtso.PaperSuite()
	if paper.Len() != 5 {
		t.Fatalf("paper suite has %d tests, want 5", paper.Len())
	}
	dekker := rmwtso.Suite().Filter("dekker-*")
	if dekker.Len() != 4 {
		t.Fatalf("Filter(dekker-*) matched %d tests, want 4: %v", dekker.Len(), dekker.Names())
	}
	if _, err := rmwtso.Suite().Filter("[").Run(); err == nil {
		t.Fatal("malformed pattern did not surface an error from Run")
	}
	if v := rmwtso.Cpp11Suite().Filter("sc-*"); len(v.Names()) != 3 {
		t.Fatalf("Cpp11 Filter(sc-*) = %v, want 3 programs", v.Names())
	}
}

// TestWithRMWTypesRestrictsSweep checks that WithRMWTypes limits the
// checked types.
func TestWithRMWTypesRestrictsSweep(t *testing.T) {
	results, err := rmwtso.Suite().Filter("SB").Run(rmwtso.WithRMWTypes(rmwtso.Type2))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	if results[0].Atomicity != rmwtso.Type2 {
		t.Fatalf("got atomicity %s, want type-2", results[0].Atomicity)
	}
}

// TestEnumerateFuncMatchesEnumerate checks the streaming enumeration
// against the materializing wrapper and its early-stop contract.
func TestEnumerateFuncMatchesEnumerate(t *testing.T) {
	test := rmwtso.FindTest("dekker-write-replacement (Fig. 3)")
	if test == nil {
		t.Fatal("Fig. 3 test not registered")
	}
	all, err := rmwtso.EnumerateExecutions(test.Program)
	if err != nil {
		t.Fatal(err)
	}
	streamed := 0
	err = rmwtso.EnumerateExecutionsFunc(test.Program, func(x *rmwtso.Execution) bool {
		streamed++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != len(all) {
		t.Fatalf("streaming visited %d candidates, materializing returned %d", streamed, len(all))
	}

	visited := 0
	err = rmwtso.EnumerateExecutionsFunc(test.Program, func(*rmwtso.Execution) bool {
		visited++
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != 1 {
		t.Fatalf("early-stopped enumeration visited %d candidates, want 1", visited)
	}
}

// TestRunBenchmarksHonoursRMWTypes checks that WithRMWTypes restricts a
// benchmark sweep: spec types are intersected with the Runner's types,
// and specs left with no types are dropped entirely.
func TestRunBenchmarksHonoursRMWTypes(t *testing.T) {
	o := rmwtso.QuickOptions()
	o.Cores = 2
	o.Scale = 0.01
	specs := rmwtso.Cpp11Specs() // wsq_wr: type-1/2; wsq_rr: all three
	runs, err := rmwtso.NewRunner(rmwtso.WithRMWTypes(rmwtso.Type3)).RunBenchmarks(o, specs)
	if err != nil {
		t.Fatal(err)
	}
	// The write-replacement spec has no type-3 run, so only the
	// read-replacement spec survives, with exactly one result.
	if len(runs) != 1 {
		t.Fatalf("got %d runs, want 1 (write replacement excludes type-3)", len(runs))
	}
	if len(runs[0].ByType) != 1 || runs[0].ByType[rmwtso.Type3] == nil {
		t.Fatalf("run ByType = %v, want exactly one type-3 result", runs[0].ByType)
	}
}

// TestParallelMappingValidation cross-checks the parallel mapping sweep
// against direct sequential validation.
func TestParallelMappingValidation(t *testing.T) {
	progs := rmwtso.Cpp11ValidationSuite().Programs()
	results, err := rmwtso.NewRunner(rmwtso.WithParallelism(8)).ValidateMappings(progs...)
	if err != nil {
		t.Fatal(err)
	}
	want := len(progs) * len(rmwtso.AllMappings()) * len(rmwtso.AllTypes())
	if len(results) != want {
		t.Fatalf("got %d results, want %d", len(results), want)
	}
	unsound := 0
	for _, r := range results {
		if !r.Sound {
			unsound++
			if r.Mapping != rmwtso.WriteMapping || r.Atomicity != rmwtso.Type3 {
				t.Errorf("unexpected unsound combination: %s under %s", r.Mapping, r.Atomicity)
			}
		}
	}
	if unsound != 1 {
		t.Fatalf("got %d unsound combinations, want exactly 1 (write-mapping under type-3)", unsound)
	}
}
