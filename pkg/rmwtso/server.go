package rmwtso

import "repro/internal/server"

// ServerConfig configures the long-running HTTP query/ops service
// (NewServer). The zero value of every field picks a sensible default,
// so ServerConfig{} is a runnable local server.
type ServerConfig = server.Config

// Server is the long-running HTTP query/ops service over an execution
// engine: POST /v1/jobs submits plan or litmus jobs, SSE streams per-unit
// progress, /v1/results answers unit and content-key queries, /v1/reports
// encodes finished sweeps byte-identically to cmd/experiments, /metrics
// exposes Prometheus-format counters, and shutdown drains in-flight jobs
// gracefully. cmd/rmwtso-serve is the binary form.
type Server = server.Server

// ServerSubmitRequest is the POST /v1/jobs request body model, exported
// so Go clients can marshal submissions without hand-writing JSON.
type ServerSubmitRequest = server.SubmitRequest

// ServerPlanSpec shapes a plan submission like cmd/experiments' flags
// shape a sweep: preset plus overrides, same plan fingerprints.
type ServerPlanSpec = server.PlanSpec

// ServerLitmusSpec selects a litmus submission's tests: a registry name,
// a group, or an inline program source.
type ServerLitmusSpec = server.LitmusSpec

// NewServer builds the HTTP service from its configuration. Serve it
// with Server.Run (or mount Server.Handler under your own listener).
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }
