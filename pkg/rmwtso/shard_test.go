package rmwtso_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/pkg/rmwtso"
)

// shardOptions shrink the sweep far enough that the differential suite
// (1+2+4 sharded runs plus an unsharded one) stays test-sized.
func shardOptions() rmwtso.Options {
	o := rmwtso.QuickOptions()
	o.Cores = 4
	o.Scale = 0.05
	return o
}

// encodeAll renders the report in every format, keyed by format name.
func encodeAll(t *testing.T, r *rmwtso.Report) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, format := range rmwtso.ReportFormats() {
		var b bytes.Buffer
		if err := rmwtso.EncodeReport(&b, r, format); err != nil {
			t.Fatalf("encoding %s: %v", format, err)
		}
		out[format] = b.Bytes()
	}
	return out
}

// TestShardMergeDifferential is the acceptance differential: for
// N ∈ {1, 2, 4} shards, running every shard separately (through artifact
// files, like a real fleet) and merging reproduces the unsharded run
// exactly — deeply equal runs, deeply equal reports, byte-identical
// ASCII/JSON/CSV encodings.
func TestShardMergeDifferential(t *testing.T) {
	o := shardOptions()
	plan, err := rmwtso.DefaultPlan(o)
	if err != nil {
		t.Fatal(err)
	}

	runner := rmwtso.NewRunner()
	full, err := runner.RunPlan(nil, plan, rmwtso.FullShard())
	if err != nil {
		t.Fatal(err)
	}
	wantRuns, err := plan.Runs(full.Units)
	if err != nil {
		t.Fatal(err)
	}
	wantReport, err := rmwtso.BuildReport(o, wantRuns)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := encodeAll(t, wantReport)

	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			dir := t.TempDir()
			paths := make([]string, n)
			for i := 0; i < n; i++ {
				// A fresh Runner per shard, like a fresh process.
				sr, err := rmwtso.NewRunner().RunPlan(nil, plan, rmwtso.Shard{Index: i, Count: n})
				if err != nil {
					t.Fatal(err)
				}
				paths[i] = filepath.Join(dir, fmt.Sprintf("shard-%d.json", i))
				if err := sr.WriteFile(paths[i]); err != nil {
					t.Fatal(err)
				}
			}
			runs, err := rmwtso.MergeShardFiles(plan, paths...)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(runs, wantRuns) {
				t.Fatalf("merged runs differ from the unsharded run")
			}
			report, err := rmwtso.BuildReport(o, runs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(report, wantReport) {
				t.Fatalf("merged report differs from the unsharded report")
			}
			for format, want := range wantBytes {
				var b bytes.Buffer
				if err := rmwtso.EncodeReport(&b, report, format); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(b.Bytes(), want) {
					t.Fatalf("%s encoding of the merged report is not byte-identical", format)
				}
			}
		})
	}
}

// TestMergeFailsLoudly covers the merge error cases: a missing unit, a
// duplicated unit, an artifact from a different plan, and a corrupted
// artifact file.
func TestMergeFailsLoudly(t *testing.T) {
	o := shardOptions()
	plan, err := rmwtso.DefaultPlan(o)
	if err != nil {
		t.Fatal(err)
	}
	runner := rmwtso.NewRunner()
	s0, err := runner.RunPlan(nil, plan, rmwtso.Shard{Index: 0, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := runner.RunPlan(nil, plan, rmwtso.Shard{Index: 1, Count: 2})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := rmwtso.MergeShards(plan, s0); err == nil ||
		!strings.Contains(err.Error(), "missing") {
		t.Errorf("merge with a missing shard: %v", err)
	}
	if _, err := rmwtso.MergeShards(plan, s0, s1, s1); err == nil ||
		!strings.Contains(err.Error(), "twice") {
		t.Errorf("merge with a duplicated shard: %v", err)
	}
	if _, err := rmwtso.MergeShards(plan, s0, s1); err != nil {
		t.Errorf("clean merge failed: %v", err)
	}

	// An artifact whose plan fingerprint differs must be rejected before
	// any unit comparison happens.
	other := *s0
	other.Plan = strings.Repeat("0", len(s0.Plan))
	if _, err := rmwtso.MergeShards(plan, &other, s1); err == nil ||
		!strings.Contains(err.Error(), "plan") {
		t.Errorf("merge with an alien-plan shard: %v", err)
	}

	// A unit the plan does not know (alien unit under the right
	// fingerprint, e.g. a hand-edited artifact) must be rejected.
	alien := *s1
	alien.Units = append(append([]rmwtso.UnitResult(nil), s1.Units...), rmwtso.UnitResult{
		Unit:   "deadbeefdeadbeef",
		Trace:  "bogus",
		Type:   rmwtso.Type1,
		Result: s1.Units[0].Result,
	})
	if _, err := rmwtso.MergeShards(plan, s0, &alien); err == nil ||
		!strings.Contains(err.Error(), "not in the plan") {
		t.Errorf("merge with an alien unit: %v", err)
	}

	// Corrupting an artifact file must fail the read, not the merge.
	dir := t.TempDir()
	path := filepath.Join(dir, "shard.json")
	if err := s0.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the payload ("units" only occurs there; the
	// envelope's own keys are schema_version/kind/payload_sum/payload).
	idx := bytes.Index(data, []byte(`"units"`))
	if idx < 0 {
		t.Fatal("artifact payload not found")
	}
	data[idx+1] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := rmwtso.ReadShardFile(path); err == nil {
		t.Errorf("corrupted artifact read succeeded")
	}
	// Truncation too.
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := rmwtso.ReadShardFile(path); err == nil {
		t.Errorf("truncated artifact read succeeded")
	}
}

// TestRunPlanEventsCarryUnitIDs asserts streamed simulation events can be
// correlated with plan entries by unit ID alone.
func TestRunPlanEventsCarryUnitIDs(t *testing.T) {
	o := shardOptions()
	plan, err := rmwtso.BuildPlan(o, rmwtso.Cpp11Specs())
	if err != nil {
		t.Fatal(err)
	}
	want := map[rmwtso.UnitID]bool{}
	for _, u := range plan.Units() {
		want[u.ID] = true
	}
	var got []rmwtso.UnitID
	runner := rmwtso.NewRunner(rmwtso.WithObserver(func(e rmwtso.Event) {
		if e.Sim != nil {
			got = append(got, e.Sim.Unit)
		}
	}))
	if _, err := runner.RunPlan(nil, plan, rmwtso.FullShard()); err != nil {
		t.Fatal(err)
	}
	if len(got) != plan.Len() {
		t.Fatalf("%d events for %d units", len(got), plan.Len())
	}
	for _, id := range got {
		if !want[id] {
			t.Errorf("event unit %q is not a plan unit", id)
		}
	}
}

// TestCheckTestsShardedPartition asserts the litmus verdict grid shards
// like a plan: disjoint, collectively exhaustive, IDs stable, and the
// merged verdict set equal to the unsharded run's.
func TestCheckTestsShardedPartition(t *testing.T) {
	view := rmwtso.Suite().Filter("SB*")
	all, err := view.Run()
	if err != nil {
		t.Fatal(err)
	}
	byUnit := map[string]rmwtso.TestResult{}
	for _, r := range all {
		if r.Unit == "" {
			t.Fatalf("unsharded verdict for %s/%s has no unit ID", r.Test.Name, r.Atomicity)
		}
		byUnit[r.Unit] = r
	}
	const n = 3
	seen := map[string]int{}
	for i := 0; i < n; i++ {
		part, err := view.RunShard(rmwtso.Shard{Index: i, Count: n})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range part {
			seen[r.Unit]++
			want, ok := byUnit[r.Unit]
			if !ok {
				t.Fatalf("sharded verdict unit %s not in the unsharded run", r.Unit)
			}
			if r.Holds != want.Holds || !r.Outcomes.Equal(want.Outcomes) {
				t.Errorf("sharded verdict for %s/%s differs", r.Test.Name, r.Atomicity)
			}
		}
	}
	if len(seen) != len(byUnit) {
		t.Fatalf("shards covered %d of %d verdicts", len(seen), len(byUnit))
	}
	for id, c := range seen {
		if c != 1 {
			t.Errorf("verdict %s ran %d times", id, c)
		}
	}
}
