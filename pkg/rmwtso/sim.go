package rmwtso

import (
	"repro/internal/sim"
	"repro/internal/workload"
)

// SimConfig describes the simulated chip multiprocessor (Table 2): cores,
// cache geometry, latencies, the RMW implementation type and the
// deadlock-avoidance knobs.
type SimConfig = sim.Config

// DefaultSimConfig returns the paper's architectural parameters.
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// Trace is a fully materialized per-core memory-operation trace. The
// simulator also accepts the lazy TraceSource form, which is the right
// shape for long workloads; a Trace adapts to it via its Source method.
type Trace = sim.Trace

// TraceOp is one operation of a trace.
type TraceOp = sim.Op

// OpStream yields one core's operations in program order, one at a time.
// Streams are single-consumer; obtain a fresh one per run from a
// TraceSource.
type OpStream = sim.OpStream

// TraceSource is the lazy form of a Trace: a named bundle of per-core
// operation streams produced on demand, so the simulator's memory use is
// bounded by the source's per-core window instead of the trace length.
// Generator.Source builds one from a benchmark profile; Trace.Source
// adapts a materialized trace.
type TraceSource = sim.TraceSource

// MaterializeTrace drains every stream of a source into a materialized
// Trace, for when the ops must be retained (inspection, repeated replay
// without regeneration cost).
func MaterializeTrace(src TraceSource) *Trace { return sim.Materialize(src) }

// SimResult holds the statistics of one simulation run, including the
// per-RMW cost split of Fig. 11(a).
type SimResult = sim.Result

// NewTrace returns an empty trace for the given core count.
func NewTrace(name string, cores int) *Trace { return sim.NewTrace(name, cores) }

// TraceRead builds a load of the cache line holding addr.
func TraceRead(addr uint64) TraceOp { return sim.Read(addr) }

// TraceWrite builds a store to the cache line holding addr.
func TraceWrite(addr uint64) TraceOp { return sim.Write(addr) }

// TraceRMW builds an atomic read-modify-write of the line holding addr.
func TraceRMW(addr uint64) TraceOp { return sim.RMW(addr) }

// TraceFence builds an mfence (drain the write buffer).
func TraceFence() TraceOp { return sim.Fence() }

// TraceCompute builds a non-memory computation of the given length.
func TraceCompute(cycles uint64) TraceOp { return sim.Compute(cycles) }

// Simulate runs one materialized trace on the simulated machine described
// by the configuration. For sweeping one trace across several RMW types
// in parallel, use Runner.SweepTrace; for bounded-memory runs of long
// workloads, use SimulateSource.
func Simulate(cfg SimConfig, trace *Trace) (*SimResult, error) {
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(trace)
}

// SimulateSource runs one streaming trace source on the simulated machine,
// pulling each core's operations on demand so memory stays bounded by the
// source's per-core window regardless of trace length. For the same
// (profile, seed, cores, scale) a streamed run produces statistics
// identical to Simulate on the materialized trace.
func SimulateSource(cfg SimConfig, src TraceSource) (*SimResult, error) {
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	return s.RunSource(src)
}

// Fig10Trace builds the write-deadlock access pattern of the paper's
// Fig. 10 on the first two cores: after a warm-up that makes each core
// the owner of the line it will RMW, core 0 writes line A and RMWs line B
// while core 1 writes line B and RMWs line A. The final fences stand in
// for the rest of the program waiting on the store buffer. A naive
// type-2/3 implementation deadlocks on it; the bloom-filter addr-list
// protocol (§3.2) completes it.
func Fig10Trace(cores int) *Trace {
	const lineA, lineB = 0x10000, 0x20000
	tr := sim.NewTrace("fig10", cores)
	tr.Append(0, sim.RMW(lineB), sim.Compute(5000))
	tr.Append(1, sim.RMW(lineA), sim.Compute(5000))
	tr.Append(0, sim.Write(lineA), sim.RMW(lineB), sim.Fence(), sim.Compute(1))
	tr.Append(1, sim.Write(lineB), sim.RMW(lineA), sim.Fence(), sim.Compute(1))
	return tr
}

// Profile describes one synthetic benchmark workload (Table 3 row).
type Profile = workload.Profile

// Generator turns a profile into per-core traces deterministically from
// its seed: Generate materializes the whole trace, Source yields a lazy
// per-core TraceSource that synthesizes operations one synchronization
// episode at a time (O(episode) memory per core). Both forms produce
// byte-identical op sequences.
type Generator = workload.Generator

// WorkloadSource is the lazy trace source a Generator builds from a
// benchmark profile; it implements TraceSource with fresh, independently
// seeded streams per call, so one source can feed concurrent runs.
type WorkloadSource = workload.Source

// Replacement selects the wsq-mst C/C++11 variant: which SC accesses of
// the Chase-Lev deque are compiled to RMWs.
type Replacement = workload.Replacement

// The wsq-mst replacement variants.
const (
	NoReplacement    = workload.NoReplacement
	ReadReplacement  = workload.ReadReplacement
	WriteReplacement = workload.WriteReplacement
)

// FindProfile returns the named benchmark profile.
func FindProfile(name string) (Profile, error) { return workload.FindProfile(name) }

// ProfileNames lists the available benchmark profiles.
func ProfileNames() []string { return workload.ProfileNames() }

// Table3Profiles returns the seven benchmark profiles of the paper's
// Table 3.
func Table3Profiles() []Profile { return workload.Table3Profiles() }

// WSQProfile returns the lock-free work-stealing benchmark profile
// (wsq-mst), the subject of the C/C++11 replacement experiments.
func WSQProfile() Profile { return workload.WSQProfile() }
