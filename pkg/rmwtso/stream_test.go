package rmwtso_test

import (
	"reflect"
	"testing"

	"repro/pkg/rmwtso"
)

// streamTestOptions is a reduced paper-shaped configuration: small enough
// for CI, structured exactly like the full sweep.
func streamTestOptions() rmwtso.Options {
	o := rmwtso.QuickOptions()
	o.Cores = 4
	o.Scale = 0.1
	return o
}

// TestSimulateSourceMatchesSimulate asserts the acceptance criterion at
// the single-run level: for the same (profile, seed, cores, scale) a
// streamed run's statistics are identical — reflect.DeepEqual on the full
// Result, including every per-core counter and per-RMW cost record — to
// the materialized run's, for every RMW type.
func TestSimulateSourceMatchesSimulate(t *testing.T) {
	cfg := rmwtso.DefaultSimConfig().WithCores(4)
	for _, name := range []string{"radiosity", "wsq-mst"} {
		profile, err := rmwtso.FindProfile(name)
		if err != nil {
			t.Fatal(err)
		}
		profile.Iterations = 32
		gen := rmwtso.Generator{Cores: 4, Seed: 20130601}
		trace, err := gen.Generate(profile)
		if err != nil {
			t.Fatal(err)
		}
		src, err := gen.Source(profile)
		if err != nil {
			t.Fatal(err)
		}
		for _, typ := range rmwtso.AllTypes() {
			materialized, err := rmwtso.Simulate(cfg.WithRMWType(typ), trace)
			if err != nil {
				t.Fatalf("%s [%s] materialized: %v", name, typ, err)
			}
			streamed, err := rmwtso.SimulateSource(cfg.WithRMWType(typ), src)
			if err != nil {
				t.Fatalf("%s [%s] streamed: %v", name, typ, err)
			}
			if !reflect.DeepEqual(materialized, streamed) {
				t.Errorf("%s [%s]: streamed result differs from materialized result\nmaterialized: %v\nstreamed:     %v",
					name, typ, materialized, streamed)
			}
		}
	}
}

// TestRunBenchmarksStreamingMatchesMaterialized asserts the criterion at
// the sweep level: a full (reduced) Table 3 + C/C++11 parallel sweep with
// Options.Materialize produces exactly the per-type results of the default
// streaming sweep.
func TestRunBenchmarksStreamingMatchesMaterialized(t *testing.T) {
	specs := append(rmwtso.Table3Specs(), rmwtso.Cpp11Specs()...)
	runner := rmwtso.NewRunner(rmwtso.WithParallelism(4))

	streamedOpts := streamTestOptions()
	streamed, err := runner.RunBenchmarks(streamedOpts, specs)
	if err != nil {
		t.Fatal(err)
	}

	materializedOpts := streamTestOptions()
	materializedOpts.Materialize = true
	materialized, err := runner.RunBenchmarks(materializedOpts, specs)
	if err != nil {
		t.Fatal(err)
	}

	if len(streamed) != len(materialized) {
		t.Fatalf("streamed sweep has %d runs, materialized %d", len(streamed), len(materialized))
	}
	for i := range streamed {
		s, m := streamed[i], materialized[i]
		if s.Name != m.Name {
			t.Fatalf("run %d: name %q vs %q", i, s.Name, m.Name)
		}
		if !reflect.DeepEqual(s.ByType, m.ByType) {
			t.Errorf("%s: streamed per-type results differ from materialized", s.Name)
		}
	}

	// The derived Table 3 rows must therefore agree too.
	n := len(rmwtso.Table3Specs())
	if !reflect.DeepEqual(rmwtso.Table3FromRuns(streamed[:n]), rmwtso.Table3FromRuns(materialized[:n])) {
		t.Error("Table 3 rows differ between streamed and materialized sweeps")
	}
}
