package rmwtso

import "repro/internal/litmus"

// Test is a litmus test: a program, a condition over its final state, and
// the expected verdict per atomicity type.
type Test = litmus.Test

// TestResult is the verdict of running one litmus test under one
// atomicity type.
type TestResult = litmus.Result

// Condition is a quantified condition over final program state, in
// herd/litmus style.
type Condition = litmus.Condition

// Term is one equality constraint of a condition.
type Term = litmus.Term

// RegTerm builds a register term ("P<tid>:<reg> = value").
func RegTerm(thread ThreadID, reg string, v Value) Term { return litmus.RegTerm(thread, reg, v) }

// MemTerm builds a final-memory term ("<location> = value").
func MemTerm(addr Addr, v Value) Term { return litmus.MemTerm(addr, v) }

// ExistsCond builds an existential condition over the terms.
func ExistsCond(terms ...Term) Condition { return litmus.ExistsCond(terms...) }

// NotExistsCond builds a negative existential condition over the terms.
func NotExistsCond(terms ...Term) Condition { return litmus.NotExistsCond(terms...) }

// ForallCond builds a universal condition over the terms.
func ForallCond(terms ...Term) Condition { return litmus.ForallCond(terms...) }

// Suite groups understood by the litmus registry.
const (
	// GroupPaper tags the tests taken directly from the paper's figures.
	GroupPaper = litmus.GroupPaper
	// GroupClassic tags the RMW-free TSO sanity tests and common RMW
	// idioms.
	GroupClassic = litmus.GroupClassic
)

// RegisterTest adds a named litmus test constructor to the registry under
// a group. Registered tests appear in Suite views and in the litmus
// command without further wiring. Duplicate names panic.
func RegisterTest(group, name string, build func() *Test) { litmus.Register(group, name, build) }

// FindTest returns a fresh instance of the registered test with the given
// name (registry name or program name), or nil.
func FindTest(name string) *Test { return litmus.FindTest(name) }

// ParseTest parses a litmus test from its textual format.
func ParseTest(src string) (*Test, error) { return litmus.Parse(src) }

// FormatTest renders a test in the litmus textual format.
func FormatTest(t *Test) string { return litmus.Format(t) }

// RenderLitmusResults renders litmus results as a fixed-width table
// sorted by test name then atomicity type. (Renamed from Report, which
// now names the evaluation report model.)
func RenderLitmusResults(results []TestResult) string { return litmus.Report(results) }

// SuiteView is a filterable selection of registered litmus tests. Views
// are built by Suite, PaperSuite, ClassicSuite or TestsOf, narrowed with
// Filter, and executed with Run. A filter error is sticky: it surfaces
// when the view is run.
type SuiteView struct {
	tests []*Test
	err   error
}

// Suite returns a view over every registered litmus test, in registration
// order (paper figures first, then classics, then any tests registered by
// the embedding program).
func Suite() *SuiteView {
	v := &SuiteView{}
	v.tests, v.err = litmus.Match("")
	return v
}

// PaperSuite returns a view over the tests taken directly from the
// paper's figures, in figure order.
func PaperSuite() *SuiteView { return &SuiteView{tests: litmus.ByGroup(litmus.GroupPaper)} }

// ClassicSuite returns a view over the classic TSO sanity tests and RMW
// idioms.
func ClassicSuite() *SuiteView { return &SuiteView{tests: litmus.ByGroup(litmus.GroupClassic)} }

// TestsOf builds an ad-hoc view over explicit tests (for example one
// parsed from a file), so they run through the same Runner machinery as
// registered tests.
func TestsOf(tests ...*Test) *SuiteView { return &SuiteView{tests: tests} }

// Filter narrows the view to tests whose name or program name matches the
// glob pattern (path.Match syntax, e.g. "SB*" or "dekker-*"). A malformed
// pattern poisons the view; the error is returned by Run.
func (v *SuiteView) Filter(pattern string) *SuiteView {
	if v.err != nil {
		return v
	}
	matched, err := litmus.Match(pattern)
	if err != nil {
		return &SuiteView{err: err}
	}
	byName := map[string]bool{}
	for _, t := range matched {
		byName[t.Name] = true
	}
	out := &SuiteView{}
	for _, t := range v.tests {
		if byName[t.Name] {
			out.tests = append(out.tests, t)
		}
	}
	return out
}

// Names returns the names of the tests in the view, in order.
func (v *SuiteView) Names() []string {
	out := make([]string, len(v.tests))
	for i, t := range v.tests {
		out[i] = t.Name
	}
	return out
}

// Tests returns the tests in the view, in order.
func (v *SuiteView) Tests() []*Test { return append([]*Test(nil), v.tests...) }

// Len returns the number of tests in the view.
func (v *SuiteView) Len() int { return len(v.tests) }

// Err returns the sticky filter error, if any.
func (v *SuiteView) Err() error { return v.err }

// Run model-checks every test in the view with a Runner built from the
// options: each (test, atomicity type) verdict is one work unit on the
// pool, streamed to the observer as it completes. Results come back in
// deterministic (test, type) order regardless of parallelism.
func (v *SuiteView) Run(opts ...Option) ([]TestResult, error) {
	return v.RunShard(FullShard(), opts...)
}

// RunShard is Run restricted to the verdict units the shard selects, so
// a fleet can split one suite across processes: the (test, type) grid and
// its unit IDs are deterministic, and the round-robin selector keeps a
// disjoint, collectively exhaustive subset per process. Results carry
// their unit IDs for correlation.
func (v *SuiteView) RunShard(shard Shard, opts ...Option) ([]TestResult, error) {
	if v.err != nil {
		return nil, v.err
	}
	return NewRunner(opts...).CheckTestsSharded(shard, v.tests...)
}
