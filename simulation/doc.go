// Package simulation is the repository's whole-system chaos harness:
// black-box scenario tests that script real `cmd/experiments` worker
// processes and real on-disk artifacts, inject composed faults through
// the seeded internal/chaos layer (kill-at-byte-N, delay, bit-flip,
// ENOSPC — armed in the child processes via the RMWTSO_CHAOS
// environment variable), and assert that every sweep either completes
// with a byte-identical report or fails loudly naming exactly the lost
// units.
//
// The package holds only tests; see README.md for the scenario catalog,
// how to add a scenario, and the seed-replay workflow. Every scenario is
// deterministic given -chaos.seed (default 1), and a failing scenario
// logs the exact replay command.
package simulation
