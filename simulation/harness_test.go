package simulation

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
)

// chaosSeed seeds every scenario's chaos spec and the harness's own
// random choices (which cache entries to corrupt, ...). A failing
// scenario logs the value, so `-chaos.seed=N` replays it exactly.
var chaosSeed = flag.Int64("chaos.seed", 1, "seed for scenario chaos specs; printed on failure for replay")

// bin is the experiments binary every scenario scripts, built once in
// TestMain. It is deliberately built without -race: the scenarios treat
// it as a black box with real-time lease deadlines, and instrumentation
// skew would make fleet timing flaky (the in-process coordinator gets
// its -race coverage from internal/coordinator's tests).
var bin string

func TestMain(m *testing.M) {
	flag.Parse()
	dir, err := os.MkdirTemp("", "rmwtso-simulation-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulation:", err)
		os.Exit(1)
	}
	bin = filepath.Join(dir, "experiments")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/experiments")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "simulation: building cmd/experiments:", err)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// quickFlags is the base sweep configuration of most scenarios: small
// enough that a full sweep takes well under a second.
func quickFlags() []string { return []string{"-quick", "-cores", "4", "-scale", "0.05"} }

// fleetFlags is the configuration of the coordinator-fleet scenarios:
// scaled so one unit simulates for tens of milliseconds, long enough
// that leases outlive units, heartbeats actually fire mid-execution,
// and a mid-sweep kill reliably lands mid-sweep.
func fleetFlags() []string { return []string{"-quick", "-cores", "4", "-scale", "2"} }

// scenarioTimeout bounds every scripted process: the acceptance rule
// that no scenario may hang is enforced by construction.
const scenarioTimeout = 120 * time.Second

// procResult is the observed outcome of one scripted process.
type procResult struct {
	Stdout string
	Stderr string
	Code   int
}

// command builds the exec.Cmd for one scripted run of the experiments
// binary, arming the chaos spec (if any) through the environment. The
// inherited environment is scrubbed of RMWTSO_CHAOS first, so faults
// never leak between scenarios or in from the developer's shell.
func command(ctx context.Context, spec *chaos.Spec, args ...string) *exec.Cmd {
	cmd := exec.CommandContext(ctx, bin, args...)
	env := os.Environ()
	kept := env[:0]
	for _, kv := range env {
		if !strings.HasPrefix(kv, chaos.Env+"=") {
			kept = append(kept, kv)
		}
	}
	if spec != nil {
		kept = append(kept, chaos.Env+"="+spec.Encode())
	}
	cmd.Env = kept
	return cmd
}

// run executes one scripted process to completion and returns its
// outcome. A process that outlives the scenario timeout fails the test
// (that is the no-hang guarantee, applied to every single step).
func run(t *testing.T, spec *chaos.Spec, args ...string) procResult {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), scenarioTimeout)
	defer cancel()
	var stdout, stderr bytes.Buffer
	cmd := command(ctx, spec, args...)
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	if ctx.Err() != nil {
		t.Fatalf("hang: %v did not finish within %s\nstderr so far:\n%s", args, scenarioTimeout, stderr.String())
	}
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return procResult{Stdout: stdout.String(), Stderr: stderr.String(), Code: code}
}

// proc is one scripted background process (a coordinator server, a
// worker mid-sweep).
type proc struct {
	cmd    *exec.Cmd
	cancel context.CancelFunc
	stdout bytes.Buffer
	stderr bytes.Buffer
	done   chan error
}

// start launches a background process under the scenario timeout.
func start(t *testing.T, spec *chaos.Spec, args ...string) *proc {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), scenarioTimeout)
	p := &proc{cancel: cancel, done: make(chan error, 1)}
	p.cmd = command(ctx, spec, args...)
	p.cmd.Stdout, p.cmd.Stderr = &p.stdout, &p.stderr
	if err := p.cmd.Start(); err != nil {
		cancel()
		t.Fatalf("starting %v: %v", args, err)
	}
	go func() { p.done <- p.cmd.Wait() }()
	t.Cleanup(func() {
		p.kill()
		p.cancel()
	})
	return p
}

// kill SIGKILLs the process (idempotent; no-op once exited).
func (p *proc) kill() {
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Kill()
	}
}

// wait blocks until the process exits and returns its outcome; the
// scenario timeout turns a hung process into a test failure upstream.
func (p *proc) wait(t *testing.T) procResult {
	t.Helper()
	err := <-p.done
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("waiting for %v: %v", p.cmd.Args, err)
		}
		code = ee.ExitCode()
	}
	return procResult{Stdout: p.stdout.String(), Stderr: p.stderr.String(), Code: code}
}

// references memoizes unfaulted runs per (flags, format), so every
// scenario compares against the same ground truth without paying for a
// clean sweep per assertion.
var (
	refMu  sync.Mutex
	refOut = map[string]string{}
)

// reference returns the stdout of an unfaulted run of the binary with
// the given sweep flags and format.
func reference(t *testing.T, flags []string, format string) string {
	t.Helper()
	key := strings.Join(flags, " ") + "|" + format
	refMu.Lock()
	defer refMu.Unlock()
	if out, ok := refOut[key]; ok {
		return out
	}
	res := run(t, nil, append(append([]string{}, flags...), "-format", format)...)
	if res.Code != 0 {
		t.Fatalf("unfaulted reference run failed (%d):\n%s", res.Code, res.Stderr)
	}
	refOut[key] = res.Stdout
	return res.Stdout
}

// planUnits returns the sweep's unit IDs in plan order for the flags.
func planUnits(t *testing.T, flags []string) []string {
	t.Helper()
	res := run(t, nil, append(append([]string{}, flags...), "-list-units")...)
	if res.Code != 0 {
		t.Fatalf("-list-units failed (%d):\n%s", res.Code, res.Stderr)
	}
	var ids []string
	for _, line := range strings.Split(res.Stdout, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 || fields[0] == "UNIT" || strings.Contains(line, "units, plan") {
			continue
		}
		ids = append(ids, fields[0])
	}
	if len(ids) == 0 {
		t.Fatalf("no units parsed from listing:\n%s", res.Stdout)
	}
	return ids
}

// jsonWithoutCoordination parses a JSON report and re-renders it with
// the coordination section removed, in canonical (sorted-key) form, so
// coordinated and static reports can be compared for identity of every
// result table.
func jsonWithoutCoordination(t *testing.T, report string) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(report), &m); err != nil {
		t.Fatalf("unparsable report JSON: %v\n%s", err, clip(report))
	}
	delete(m, "coordination")
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// coordination extracts the coordination section of a JSON report.
func coordination(t *testing.T, report string) map[string]any {
	t.Helper()
	var m struct {
		Coordination map[string]any `json:"coordination"`
	}
	if err := json.Unmarshal([]byte(report), &m); err != nil {
		t.Fatalf("unparsable report JSON: %v\n%s", err, clip(report))
	}
	return m.Coordination
}

// deadLetterUnits returns the unit IDs of a report's dead-letter
// section, or nil when absent.
func deadLetterUnits(t *testing.T, report string) []string {
	t.Helper()
	var m struct {
		Coordination struct {
			DeadLetters []struct {
				Unit string `json:"unit"`
			} `json:"dead_letters"`
		} `json:"coordination"`
	}
	if err := json.Unmarshal([]byte(report), &m); err != nil {
		t.Fatalf("unparsable report JSON: %v\n%s", err, clip(report))
	}
	var ids []string
	for _, d := range m.Coordination.DeadLetters {
		ids = append(ids, d.Unit)
	}
	return ids
}

// jsonInto unmarshals a report into a typed view.
func jsonInto(report string, v any) error {
	return json.Unmarshal([]byte(report), v)
}

// pickPort reserves a free localhost port for a coordinator server. The
// port is released before the server binds it — a race in principle,
// harmless in this single-harness process.
func pickPort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// waitListening polls until addr accepts TCP connections (the server
// process is up) or the deadline lapses.
func waitListening(t *testing.T, addr string, srv *proc) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			conn.Close()
			return
		}
		select {
		case err := <-srv.done:
			t.Fatalf("coordinator exited before listening: %v\nstderr:\n%s", err, srv.stderr.String())
		case <-time.After(50 * time.Millisecond):
		}
	}
	t.Fatalf("coordinator on %s never started listening", addr)
}

// harnessRand returns the scenario's own deterministic random source,
// derived from -chaos.seed plus a per-scenario salt so scenarios do not
// share a decision stream.
func harnessRand(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(*chaosSeed ^ salt))
}

// clip bounds long process output in failure messages.
func clip(s string) string {
	if len(s) > 2000 {
		return s[:2000] + "\n... (clipped)"
	}
	return s
}

// scenarioDir returns the scenario's artifact directory. By default it
// is an ordinary auto-cleaned test temp dir; with SIM_ARTIFACT_DIR set
// (as CI sets it) directories are created under that root and survive
// the run, so a failing job can upload the artifacts a scenario left
// behind — torn temps, shard files, cache entries — next to the seed.
func scenarioDir(t *testing.T) string {
	t.Helper()
	root := os.Getenv("SIM_ARTIFACT_DIR")
	if root == "" {
		return t.TempDir()
	}
	base := filepath.Join(root, strings.ReplaceAll(t.Name(), "/", "_"))
	if err := os.MkdirAll(base, 0o755); err != nil {
		t.Fatal(err)
	}
	dir, err := os.MkdirTemp(base, "")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// tempPrefixFiles globs dir for orphaned atomic-write temp files.
func tempPrefixFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}
