package simulation

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
)

// A scenario scripts real processes against real artifacts under
// injected faults and asserts the sweep either completes byte-identical
// to an unfaulted run or fails loudly naming the lost units.
type scenario struct {
	name string
	run  func(t *testing.T)
}

var scenarios = []scenario{
	{"worker_killed_mid_artifact_write", scenarioKillMidWrite},
	{"merge_racing_running_shard", scenarioMergeRace},
	{"concurrent_sweeps_shared_cache", scenarioSharedCache},
	{"disk_full_mid_sweep", scenarioDiskFull},
	{"coordinator_fleet_composed_faults", scenarioFleet},
	{"cache_bitflip_storm_warm_rerun", scenarioBitflipStorm},
	{"retry_exhaustion_partial_report", scenarioRetryExhaustion},
	{"worker_reconnect_after_coordinator_restart", scenarioCoordinatorRestart},
}

// TestScenarios runs the whole matrix. Each scenario is an independent
// subtest, so one can be replayed alone:
//
//	go test ./simulation -run 'TestScenarios/<name>$' -chaos.seed=N
func TestScenarios(t *testing.T) {
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			t.Cleanup(func() {
				if t.Failed() {
					t.Logf("replay: go test ./simulation -run 'TestScenarios/%s$' -chaos.seed=%d", sc.name, *chaosSeed)
				}
			})
			sc.run(t)
		})
	}
}

// TestScenarioSeedSweep reruns the most seed-sensitive scenarios under
// additional derived seeds — the scheduled long-mode CI job's extra
// coverage. Skipped in -short mode, where the PR gate runs the matrix
// once under the default (or explicitly replayed) seed.
func TestScenarioSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is long-mode only; run without -short")
	}
	base := *chaosSeed
	defer func() { *chaosSeed = base }()
	sensitive := map[string]bool{
		"worker_killed_mid_artifact_write":  true,
		"cache_bitflip_storm_warm_rerun":    true,
		"coordinator_fleet_composed_faults": true,
	}
	for _, delta := range []int64{1, 2, 3} {
		seed := base + delta
		for _, sc := range scenarios {
			if !sensitive[sc.name] {
				continue
			}
			t.Run(fmt.Sprintf("seed%d/%s", seed, sc.name), func(t *testing.T) {
				*chaosSeed = seed
				t.Cleanup(func() {
					*chaosSeed = base
					if t.Failed() {
						t.Logf("replay: go test ./simulation -run 'TestScenarios/%s$' -chaos.seed=%d", sc.name, seed)
					}
				})
				sc.run(t)
			})
		}
	}
}

// scenarioKillMidWrite SIGKILLs a shard worker 100 bytes into its
// artifact write. The torn prefix must stay an orphaned temp file — the
// artifact is never published — the merge without that shard must name
// exactly the lost units, and a clean rerun must merge byte-identical
// to the unsharded reference.
func scenarioKillMidWrite(t *testing.T) {
	flags := quickFlags()
	dir := scenarioDir(t)
	shardFile := func(i int) string { return filepath.Join(dir, fmt.Sprintf("shard-%d.json", i)) }

	spec := &chaos.Spec{Seed: *chaosSeed, Rules: []chaos.Rule{
		{Hook: chaos.HookWrite, Kind: chaos.KindKill, Match: "shard-0.json", At: 100},
	}}
	res := run(t, spec, append(quickFlags(), "-shard", "0/3", "-out", shardFile(0))...)
	if res.Code != chaos.KillExitCode {
		t.Fatalf("killed shard worker exited %d, want %d\nstderr:\n%s", res.Code, chaos.KillExitCode, clip(res.Stderr))
	}
	if !strings.Contains(res.Stderr, "chaos armed") || !strings.Contains(res.Stderr, "injected kill") {
		t.Fatalf("kill not visible on stderr:\n%s", clip(res.Stderr))
	}
	if _, err := os.Stat(shardFile(0)); !os.IsNotExist(err) {
		t.Fatalf("torn artifact was published (stat err %v)", err)
	}
	orphans := tempPrefixFiles(t, dir)
	if len(orphans) != 1 {
		t.Fatalf("orphan temps %v, want exactly the torn one", orphans)
	}
	if fi, err := os.Stat(orphans[0]); err != nil || fi.Size() != 100 {
		t.Fatalf("torn temp holds %d bytes (err %v), want the 100-byte kill prefix", fi.Size(), err)
	}

	for i := 1; i <= 2; i++ {
		if res := run(t, nil, append(quickFlags(), "-shard", fmt.Sprintf("%d/3", i), "-out", shardFile(i))...); res.Code != 0 {
			t.Fatalf("clean shard %d failed (%d):\n%s", i, res.Code, clip(res.Stderr))
		}
	}

	// Merging without the killed shard must fail loudly, naming exactly
	// the lost units (shard 0 = every third plan unit).
	units := planUnits(t, flags)
	var lost []string
	for i, id := range units {
		if i%3 == 0 {
			lost = append(lost, id)
		}
	}
	sort.Strings(lost)
	mres := run(t, nil, append(quickFlags(), "-merge", "-format", "ascii", shardFile(1), shardFile(2))...)
	if mres.Code == 0 {
		t.Fatal("merge without the killed shard succeeded")
	}
	want := fmt.Sprintf("%d of %d plan units missing", len(lost), len(units))
	if !strings.Contains(mres.Stderr, want) {
		t.Fatalf("merge failure does not carry %q:\n%s", want, clip(mres.Stderr))
	}
	for i, id := range lost {
		if i >= 8 {
			break // the message bounds the listing at 8 units
		}
		if !strings.Contains(mres.Stderr, id) {
			t.Errorf("lost unit %s not named in the merge failure:\n%s", id, clip(mres.Stderr))
		}
	}

	// Recovery: rerun the shard cleanly, merge, compare byte-identical.
	if res := run(t, nil, append(quickFlags(), "-shard", "0/3", "-out", shardFile(0))...); res.Code != 0 {
		t.Fatalf("shard 0 rerun failed (%d):\n%s", res.Code, clip(res.Stderr))
	}
	merged := run(t, nil, append(quickFlags(), "-merge", "-format", "ascii", shardFile(0), shardFile(1), shardFile(2))...)
	if merged.Code != 0 {
		t.Fatalf("recovered merge failed (%d):\n%s", merged.Code, clip(merged.Stderr))
	}
	if merged.Stdout != reference(t, flags, "ascii") {
		t.Fatal("recovered merge is not byte-identical to the unsharded reference")
	}
}

// scenarioMergeRace merges in a loop while a delayed shard worker is
// still writing its artifact. Until publication every merge must fail
// loudly over the absent shard — never read a torn file — and the
// moment it succeeds the output must be byte-identical.
func scenarioMergeRace(t *testing.T) {
	flags := quickFlags()
	dir := scenarioDir(t)
	shardFile := func(i int) string { return filepath.Join(dir, fmt.Sprintf("shard-%d.json", i)) }
	for i := 1; i <= 2; i++ {
		if res := run(t, nil, append(quickFlags(), "-shard", fmt.Sprintf("%d/3", i), "-out", shardFile(i))...); res.Code != 0 {
			t.Fatalf("shard %d failed (%d):\n%s", i, res.Code, clip(res.Stderr))
		}
	}

	spec := &chaos.Spec{Seed: *chaosSeed, Rules: []chaos.Rule{
		{Hook: chaos.HookWrite, Kind: chaos.KindDelay, Match: "shard-0.json", DelayMS: 1200},
	}}
	writer := start(t, spec, append(quickFlags(), "-shard", "0/3", "-out", shardFile(0))...)

	ref := reference(t, flags, "ascii")
	mergeArgs := append(quickFlags(), "-merge", "-format", "ascii", shardFile(0), shardFile(1), shardFile(2))
	successes, failures := 0, 0
	for done := false; !done; {
		select {
		case err := <-writer.done:
			writer.done <- err
			done = true
		default:
		}
		m := run(t, nil, mergeArgs...)
		if m.Code == 0 {
			successes++
			if m.Stdout != ref {
				t.Fatal("racing merge succeeded with output differing from the reference")
			}
		} else {
			failures++
			if !strings.Contains(m.Stderr, "shard-0.json") {
				t.Fatalf("racing merge failed without naming the absent shard:\n%s", clip(m.Stderr))
			}
			for _, poison := range []string{"checksum", "corrupt", "unexpected end"} {
				if strings.Contains(m.Stderr, poison) {
					t.Fatalf("racing merge observed a torn artifact (%q):\n%s", poison, clip(m.Stderr))
				}
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	if w := writer.wait(t); w.Code != 0 {
		t.Fatalf("delayed shard worker failed (%d):\n%s", w.Code, clip(w.Stderr))
	}
	if failures == 0 {
		t.Fatal("the race never observed the shard mid-write; the delay did not hold the artifact back")
	}
	final := run(t, nil, mergeArgs...)
	if final.Code != 0 || final.Stdout != ref {
		t.Fatalf("final merge: code %d, identical %v", final.Code, final.Stdout == ref)
	}
}

// scenarioSharedCache runs two full sweeps concurrently against one
// cache directory — one of them with delayed cache writes to widen the
// race window. Both must produce byte-identical reports: concurrent
// atomic publication may waste work, never corrupt results.
func scenarioSharedCache(t *testing.T) {
	flags := quickFlags()
	cacheDir := filepath.Join(scenarioDir(t), "cache")
	args := append(quickFlags(), "-format", "json", "-cache-dir", cacheDir)

	slowWrites := &chaos.Spec{Seed: *chaosSeed, Rules: []chaos.Rule{
		{Hook: chaos.HookWrite, Kind: chaos.KindDelay, Match: cacheDir, DelayMS: 10, Count: 20},
	}}
	pA := start(t, nil, args...)
	pB := start(t, slowWrites, args...)
	ra, rb := pA.wait(t), pB.wait(t)
	if ra.Code != 0 || rb.Code != 0 {
		t.Fatalf("concurrent sweeps exited %d and %d\nA stderr:\n%s\nB stderr:\n%s",
			ra.Code, rb.Code, clip(ra.Stderr), clip(rb.Stderr))
	}
	ref := reference(t, flags, "json")
	if ra.Stdout != ref {
		t.Fatal("sweep A diverged from the reference")
	}
	if rb.Stdout != ref {
		t.Fatal("sweep B (delayed cache writes) diverged from the reference")
	}
}

// scenarioDiskFull fills the disk five cache stores into a sweep. The
// sweep must complete with byte-identical tables — persistence is
// best-effort — while the stderr cache line confesses the store errors.
func scenarioDiskFull(t *testing.T) {
	flags := quickFlags()
	cacheDir := filepath.Join(scenarioDir(t), "cache")
	args := append(quickFlags(), "-format", "json", "-cache-dir", cacheDir)

	spec := &chaos.Spec{Seed: *chaosSeed, Rules: []chaos.Rule{
		{Hook: chaos.HookWrite, Kind: chaos.KindENOSPC, Match: cacheDir, After: 5},
	}}
	res := run(t, spec, args...)
	if res.Code != 0 {
		t.Fatalf("sweep on a full disk exited %d:\n%s", res.Code, clip(res.Stderr))
	}
	if res.Stdout != reference(t, flags, "json") {
		t.Fatal("full-disk sweep diverged from the reference")
	}
	if !strings.Contains(res.Stderr, "store errors") {
		t.Fatalf("store errors not confessed on stderr:\n%s", clip(res.Stderr))
	}
	// With the disk back, the partially warm cache must still serve a
	// byte-identical rerun.
	rerun := run(t, nil, args...)
	if rerun.Code != 0 || rerun.Stdout != reference(t, flags, "json") {
		t.Fatalf("post-recovery rerun: code %d, identical %v", rerun.Code, rerun.Stdout == reference(t, flags, "json"))
	}
}

// scenarioFleet is the composed-fault centerpiece: an HTTP coordinator
// fleet suffering a worker crash, a torn ack, chaos-killed lease polls
// and delayed heartbeats, all at once. The surviving workers must drain
// the queue and the assembled report must match the static reference in
// every result table.
func scenarioFleet(t *testing.T) {
	flags := fleetFlags()
	addr := pickPort(t)
	url := "http://" + addr

	srv := start(t, nil, append(fleetFlags(),
		"-serve-coordinator", addr, "-lease-ttl", "150ms", "-max-attempts", "10", "-format", "json")...)
	waitListening(t, addr, srv)

	// Every worker passes the same -lease-ttl so its heartbeat interval
	// (TTL/3 = 50ms) keeps leases on long units alive; without it the
	// default 5s interval never beats and long units churn through expiry.
	workerArgs := func(name string) []string {
		return append(fleetFlags(), "-worker", url, "-worker-name", name, "-lease-ttl", "150ms")
	}

	// Fault 1: a worker crashes after one unit, abandoning its lease.
	crashy := run(t, nil, append(workerArgs("crashy"), "-crash-after", "1")...)
	if crashy.Code != 3 {
		t.Fatalf("crashing worker exited %d, want 3\nstderr:\n%s", crashy.Code, clip(crashy.Stderr))
	}

	// Fault 2: a worker's first ack is torn in transit after
	// checksumming; the coordinator must refuse it and the worker's exit
	// must be loud. The unit comes back through lease expiry.
	tornSpec := &chaos.Spec{Seed: *chaosSeed, Rules: []chaos.Rule{
		{Hook: chaos.HookAck, Kind: chaos.KindFlip, Match: "torn", Count: 1},
	}}
	torn := run(t, tornSpec, workerArgs("torn-worker")...)
	if torn.Code == 0 {
		t.Fatalf("torn-ack worker drained cleanly; the flip did not bite:\n%s", clip(torn.Stderr))
	}
	if !strings.Contains(torn.Stderr, "checksum") {
		t.Fatalf("torn ack not refused via the checksum:\n%s", clip(torn.Stderr))
	}

	// Faults 3+4 ride along with the recovery fleet: one worker whose
	// heartbeats stall past the lease TTL (losing leases mid-execution,
	// which it must survive), one whose lease polls are randomly fatal.
	slowSpec := &chaos.Spec{Seed: *chaosSeed, Rules: []chaos.Rule{
		{Hook: chaos.HookHeartbeat, Kind: chaos.KindDelay, Match: "slow", DelayMS: 400, Count: 2},
	}}
	slow := start(t, slowSpec, workerArgs("slow-beat")...)
	time.Sleep(100 * time.Millisecond) // let it lease before the steady worker drains
	flakySpec := &chaos.Spec{Seed: *chaosSeed, Rules: []chaos.Rule{
		{Hook: chaos.HookLease, Kind: chaos.KindKill, Match: "flaky", Prob: 0.4},
	}}
	flaky := start(t, flakySpec, workerArgs("flaky")...)
	steady := start(t, nil, workerArgs("steady")...)

	sres := srv.wait(t)
	if sres.Code != 0 {
		t.Fatalf("coordinator exited %d:\n%s", sres.Code, clip(sres.Stderr))
	}
	if r := slow.wait(t); r.Code != 0 {
		t.Fatalf("slow-heartbeat worker exited %d, want survival:\n%s", r.Code, clip(r.Stderr))
	} else if !strings.Contains(r.Stderr, "injected delay") {
		t.Fatalf("heartbeat delay never fired on the slow worker:\n%s", clip(r.Stderr))
	}
	if r := flaky.wait(t); r.Code != 0 && r.Code != chaos.KillExitCode {
		t.Fatalf("flaky worker exited %d, want 0 or %d:\n%s", r.Code, chaos.KillExitCode, clip(r.Stderr))
	}
	if r := steady.wait(t); r.Code != 0 {
		t.Fatalf("steady worker exited %d:\n%s", r.Code, clip(r.Stderr))
	}

	coord := coordination(t, sres.Stdout)
	if coord["mode"] != "http" {
		t.Fatalf("coordination mode %v, want http", coord["mode"])
	}
	if expired, _ := coord["expired"].(float64); expired < 2 {
		t.Fatalf("expired leases %v, want >= 2 (the crash and the torn ack)", coord["expired"])
	}
	if dl := deadLetterUnits(t, sres.Stdout); len(dl) != 0 {
		t.Fatalf("dead letters %v in a recoverable-fault fleet", dl)
	}
	workers := map[string]bool{}
	if ws, ok := coord["workers"].([]any); ok {
		for _, w := range ws {
			if m, ok := w.(map[string]any); ok {
				workers[fmt.Sprint(m["worker"])] = true
			}
		}
	}
	for _, name := range []string{"crashy", "torn-worker", "slow-beat", "steady"} {
		if !workers[name] {
			t.Errorf("worker %s missing from the coordination section (%v)", name, workers)
		}
	}
	if got, want := jsonWithoutCoordination(t, sres.Stdout), jsonWithoutCoordination(t, reference(t, flags, "json")); got != want {
		t.Fatal("fleet report diverged from the static reference outside the coordination section")
	}
}

// scenarioBitflipStorm corrupts cache entries on disk and in flight
// during a warm rerun. Every flip must be detected by the envelope
// checksums and degrade to a recomputation — the report stays
// byte-identical — and a further rerun must find the cache healed.
func scenarioBitflipStorm(t *testing.T) {
	flags := quickFlags()
	cacheDir := filepath.Join(scenarioDir(t), "cache")
	args := append(quickFlags(), "-format", "json", "-cache-dir", cacheDir)

	cold := run(t, nil, args...)
	if cold.Code != 0 || cold.Stdout != reference(t, flags, "json") {
		t.Fatalf("cold run: code %d, identical %v", cold.Code, cold.Stdout == reference(t, flags, "json"))
	}

	// Storm half 1: the harness flips one bit in three entries at rest.
	entries, err := filepath.Glob(filepath.Join(cacheDir, "*.json"))
	if err != nil || len(entries) < 4 {
		t.Fatalf("cache entries %d (err %v), want enough to corrupt", len(entries), err)
	}
	sort.Strings(entries)
	rng := harnessRand(0x5106)
	for _, i := range rng.Perm(len(entries))[:3] {
		data, err := os.ReadFile(entries[i])
		if err != nil {
			t.Fatal(err)
		}
		pos := rng.Intn(len(data) * 8)
		data[pos/8] ^= 1 << (pos % 8)
		if err := os.WriteFile(entries[i], data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Storm half 2: two more reads are flipped in flight.
	spec := &chaos.Spec{Seed: *chaosSeed, Rules: []chaos.Rule{
		{Hook: chaos.HookCacheRead, Kind: chaos.KindFlip, After: 3, Count: 2},
	}}
	warm := run(t, spec, args...)
	if warm.Code != 0 {
		t.Fatalf("warm rerun under the storm exited %d:\n%s", warm.Code, clip(warm.Stderr))
	}
	if warm.Stdout != reference(t, flags, "json") {
		t.Fatal("bit-flip storm leaked into the report")
	}
	if n := corruptCount(t, warm.Stderr); n < 3 {
		t.Fatalf("cache line reports %d corrupt entries, want >= 3:\n%s", n, clip(warm.Stderr))
	}

	// The storm's casualties were deleted and re-stored: a clean rerun
	// must be fully warm again.
	heal := run(t, nil, args...)
	if heal.Code != 0 || heal.Stdout != reference(t, flags, "json") {
		t.Fatalf("healed rerun: code %d, identical %v", heal.Code, heal.Stdout == reference(t, flags, "json"))
	}
	if n := corruptCount(t, heal.Stderr); n != 0 {
		t.Fatalf("healed rerun still sees %d corrupt entries:\n%s", n, clip(heal.Stderr))
	}
}

// corruptCount parses the corrupt-entry counter from the stderr cache
// summary line.
func corruptCount(t *testing.T, stderr string) int {
	t.Helper()
	m := regexp.MustCompile(`(\d+) corrupt`).FindStringSubmatch(stderr)
	if m == nil {
		t.Fatalf("no cache summary line on stderr:\n%s", clip(stderr))
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// scenarioRetryExhaustion poisons units until their attempts exhaust.
// The sweep must terminate (no hang), exit loudly, name exactly the
// dead-lettered units, and still emit a well-formed partial report —
// including the degenerate case where every unit dies.
func scenarioRetryExhaustion(t *testing.T) {
	flags := quickFlags()
	units := planUnits(t, flags)
	poisoned := []string{units[1], units[3]}
	sort.Strings(poisoned)

	res := run(t, nil, append(quickFlags(),
		"-coordinate", "3", "-max-attempts", "2", "-fail-unit", strings.Join(poisoned, ","), "-format", "json")...)
	if res.Code != 1 {
		t.Fatalf("poisoned sweep exited %d, want 1\nstderr:\n%s", res.Code, clip(res.Stderr))
	}
	if !strings.Contains(res.Stderr, "dead-lettered") ||
		!strings.Contains(res.Stderr, fmt.Sprintf("2 of %d", len(units))) {
		t.Fatalf("dead-letter failure not loud:\n%s", clip(res.Stderr))
	}
	for _, id := range poisoned {
		if !strings.Contains(res.Stderr, id) {
			t.Errorf("dead-lettered unit %s not named on stderr:\n%s", id, clip(res.Stderr))
		}
	}
	dl := deadLetterUnits(t, res.Stdout)
	sort.Strings(dl)
	if strings.Join(dl, ",") != strings.Join(poisoned, ",") {
		t.Fatalf("report dead letters %v, want exactly %v", dl, poisoned)
	}

	// The degenerate cascade: every unit poisoned. Still a loud exit and
	// a well-formed empty partial report — model-checked tables intact,
	// run-derived sections empty, summary zero (not the sentinel range).
	all := run(t, nil, append(quickFlags(),
		"-coordinate", "3", "-max-attempts", "2", "-fail-unit", strings.Join(units, ","), "-format", "json")...)
	if all.Code != 1 {
		t.Fatalf("all-poisoned sweep exited %d, want 1\nstderr:\n%s", all.Code, clip(all.Stderr))
	}
	if !strings.Contains(all.Stderr, fmt.Sprintf("%d of %d", len(units), len(units))) {
		t.Fatalf("all-poisoned failure does not report the full loss:\n%s", clip(all.Stderr))
	}
	if dl := deadLetterUnits(t, all.Stdout); len(dl) != len(units) {
		t.Fatalf("all-poisoned dead letters %d, want %d", len(dl), len(units))
	}
	var rep struct {
		Table1  []any `json:"table1"`
		Table3  []any `json:"table3"`
		Fig11a  []any `json:"fig11a"`
		Summary struct {
			Type2Min float64 `json:"type2_cost_reduction_min"`
			Type2Max float64 `json:"type2_cost_reduction_max"`
		} `json:"summary"`
	}
	if err := jsonInto(all.Stdout, &rep); err != nil {
		t.Fatalf("all-poisoned report unparsable: %v\n%s", err, clip(all.Stdout))
	}
	if len(rep.Table3) != 0 || len(rep.Fig11a) != 0 {
		t.Fatalf("run-derived sections non-empty in the empty partial report: table3=%d fig11a=%d", len(rep.Table3), len(rep.Fig11a))
	}
	if len(rep.Table1) == 0 {
		t.Fatal("model-checked table missing from the empty partial report")
	}
	if rep.Summary.Type2Min != 0 || rep.Summary.Type2Max != 0 {
		t.Fatalf("empty partial report's summary carries sentinel values: min=%g max=%g",
			rep.Summary.Type2Min, rep.Summary.Type2Max)
	}
}

// scenarioCoordinatorRestart covers the transport edges of a restarting
// coordinator: a worker with a mismatched plan is rejected fast; a
// worker whose coordinator dies mid-sweep fails loudly instead of
// hanging; a restarted coordinator drains with a fresh worker to the
// same byte-identical report.
func scenarioCoordinatorRestart(t *testing.T) {
	flags := quickFlags()
	addr := pickPort(t)
	url := "http://" + addr
	serveArgs := append(quickFlags(), "-serve-coordinator", addr, "-lease-ttl", "2s", "-format", "json")

	srvA := start(t, nil, serveArgs...)
	waitListening(t, addr, srvA)

	// A worker whose flags disagree rebuilds a different plan and must
	// be turned away before any work is handed out.
	mismatched := run(t, nil, "-quick", "-cores", "4", "-scale", "0.1", "-worker", url, "-worker-name", "mismatched")
	if mismatched.Code == 0 {
		t.Fatal("plan-mismatched worker was handed work")
	}
	if !strings.Contains(mismatched.Stderr, "plan") {
		t.Fatalf("mismatch rejection does not name the plan:\n%s", clip(mismatched.Stderr))
	}

	// A victim worker, slowed so the sweep outlives the coordinator.
	victimSpec := &chaos.Spec{Seed: *chaosSeed, Rules: []chaos.Rule{
		{Hook: chaos.HookLease, Kind: chaos.KindDelay, Match: "victim", DelayMS: 150},
	}}
	victim := start(t, victimSpec, append(quickFlags(), "-worker", url, "-worker-name", "victim")...)
	time.Sleep(1200 * time.Millisecond)
	srvA.kill()
	vres := victim.wait(t)
	if vres.Code == 0 {
		t.Fatal("worker drained against a killed coordinator")
	}
	if vres.Code == chaos.KillExitCode || vres.Code == 3 {
		t.Fatalf("worker exited %d; the failure should be the transport, not an injected fault", vres.Code)
	}

	// Restart on the same address: a fresh fleet must complete the sweep
	// from scratch and reproduce the reference.
	srvB := start(t, nil, serveArgs...)
	waitListening(t, addr, srvB)
	if r := run(t, nil, append(quickFlags(), "-worker", url, "-worker-name", "second-shift")...); r.Code != 0 {
		t.Fatalf("post-restart worker exited %d:\n%s", r.Code, clip(r.Stderr))
	}
	sres := srvB.wait(t)
	if sres.Code != 0 {
		t.Fatalf("restarted coordinator exited %d:\n%s", sres.Code, clip(sres.Stderr))
	}
	coord := coordination(t, sres.Stdout)
	if coord["mode"] != "http" {
		t.Fatalf("coordination mode %v, want http", coord["mode"])
	}
	if got, want := jsonWithoutCoordination(t, sres.Stdout), jsonWithoutCoordination(t, reference(t, flags, "json")); got != want {
		t.Fatal("post-restart report diverged from the static reference outside the coordination section")
	}
}
