// Command archlint enforces the repository's layer DAG:
//
//	cmd, examples, simulation -> pkg/rmwtso -> internal/server ->
//	    internal/engine -> {coordinator, simcache, experiments, sim,
//	    memmodel, core, litmus, cpp11, workload, ...}
//
// Concretely, per layer (non-test files only; tests may cross layers to
// build fixtures):
//
//   - Binaries and examples (cmd/..., examples/..., simulation, the module
//     root) import repro packages only from pkg/... — the facade is the
//     sole public entry point — plus internal/cliflags, the shared
//     flag-parsing helper that exists exactly for the binaries.
//   - The facade (pkg/...) may import internal layers; nothing imports cmd.
//   - The HTTP service (internal/server) sits between the facade and the
//     engine: it may import the engine and the lower layers, and only the
//     facade may import it.
//   - The execution engine (internal/engine/...) may import the lower
//     internal layers but never pkg/... or internal/server — the facade
//     points at the engine, not the reverse.
//   - internal/cliflags is a leaf: pure flag-layer glue that imports no
//     repro package at all.
//   - Every other internal package is below the engine: it must not import
//     internal/engine/..., internal/server, internal/cliflags or pkg/....
//     In particular internal/experiments describes the benchmark grid and
//     renders results; execution lives in the engine alone.
//   - tools/... follow the binary rule (repro imports from pkg/... and
//     internal/cliflags only).
//
// A violation fails the build with the offending import chain, rooted at
// a binary when one reaches the edge, so the report shows how the illegal
// dependency becomes load-bearing. Like doclint, archlint uses only the
// standard library.
//
// Usage:
//
//	go run ./tools/archlint
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// module is the module path every repository-local import starts with.
const module = "repro"

// layer names the architectural layers of the DAG.
type layer int

const (
	layerBinary layer = iota // cmd/..., examples/..., simulation, module root
	layerTools               // tools/...
	layerFacade              // pkg/...
	layerServer              // internal/server/...
	layerEngine              // internal/engine/...
	layerCLI                 // internal/cliflags (leaf flag glue)
	layerLower               // every other internal/...
)

func (l layer) String() string {
	switch l {
	case layerBinary:
		return "binary"
	case layerTools:
		return "tools"
	case layerFacade:
		return "facade (pkg)"
	case layerServer:
		return "server"
	case layerEngine:
		return "engine"
	case layerCLI:
		return "cliflags"
	case layerLower:
		return "internal"
	}
	return "unknown"
}

// layerOf classifies a repository-local package path.
func layerOf(pkg string) layer {
	rel := strings.TrimPrefix(pkg, module)
	rel = strings.TrimPrefix(rel, "/")
	switch {
	case rel == "" || rel == "simulation" ||
		strings.HasPrefix(rel, "cmd/") || strings.HasPrefix(rel, "examples/") ||
		strings.HasPrefix(rel, "cmd") && rel == "cmd", strings.HasPrefix(rel, "examples") && rel == "examples":
		return layerBinary
	case rel == "tools" || strings.HasPrefix(rel, "tools/"):
		return layerTools
	case rel == "pkg" || strings.HasPrefix(rel, "pkg/"):
		return layerFacade
	case rel == "internal/server" || strings.HasPrefix(rel, "internal/server/"):
		return layerServer
	case rel == "internal/engine" || strings.HasPrefix(rel, "internal/engine/"):
		return layerEngine
	case rel == "internal/cliflags" || strings.HasPrefix(rel, "internal/cliflags/"):
		return layerCLI
	default:
		return layerLower
	}
}

// allowed reports whether a direct import from layer a to layer b is
// legal, and if not, why.
func allowed(from, to layer) (bool, string) {
	switch from {
	case layerBinary, layerTools:
		if to == layerFacade || to == layerCLI {
			return true, ""
		}
		return false, fmt.Sprintf("%s packages import repro code only through the facade (pkg/...) and internal/cliflags", from)
	case layerFacade:
		if to != layerBinary && to != layerTools {
			return true, ""
		}
		return false, "the facade must not import binaries or tools"
	case layerServer:
		if to == layerServer || to == layerEngine || to == layerLower {
			return true, ""
		}
		return false, "the server imports only the engine and lower internal layers, never pkg/..., cliflags or binaries"
	case layerEngine:
		if to == layerEngine || to == layerLower {
			return true, ""
		}
		return false, "the engine imports only lower internal layers, never internal/server, pkg/... or binaries"
	case layerCLI:
		return false, "internal/cliflags is a leaf: it must not import any repro package"
	case layerLower:
		if to == layerLower {
			return true, ""
		}
		return false, "internal packages sit below the engine: they must not import internal/engine/..., internal/server, internal/cliflags or pkg/..."
	}
	return false, "unknown layer"
}

// imports maps each repository package to its repository-local imports.
type graph map[string][]string

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	g, err := buildGraph(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "archlint:", err)
		os.Exit(2)
	}

	type violation struct {
		from, to, reason string
	}
	var violations []violation
	for from, tos := range g {
		for _, to := range tos {
			if ok, reason := allowed(layerOf(from), layerOf(to)); !ok {
				violations = append(violations, violation{from, to, reason})
			}
		}
	}
	if len(violations) == 0 {
		return
	}
	sort.Slice(violations, func(i, j int) bool {
		if violations[i].from != violations[j].from {
			return violations[i].from < violations[j].from
		}
		return violations[i].to < violations[j].to
	})
	fmt.Fprintf(os.Stderr, "archlint: %d forbidden imports:\n", len(violations))
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "  %s -> %s\n    rule: %s\n", v.from, v.to, v.reason)
		if chain := chainTo(g, v.from); len(chain) > 1 {
			fmt.Fprintf(os.Stderr, "    chain: %s -> %s\n", strings.Join(chain, " -> "), v.to)
		}
	}
	os.Exit(1)
}

// chainTo returns the shortest import chain from a binary entry point to
// the given package (inclusive), or just the package itself when no
// binary reaches it. It shows how an illegal edge becomes load-bearing.
func chainTo(g graph, target string) []string {
	var roots []string
	for pkg := range g {
		if layerOf(pkg) == layerBinary {
			roots = append(roots, pkg)
		}
	}
	sort.Strings(roots)
	type node struct {
		pkg  string
		path []string
	}
	queue := make([]node, 0, len(roots))
	seen := map[string]bool{}
	for _, r := range roots {
		queue = append(queue, node{r, []string{r}})
		seen[r] = true
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.pkg == target {
			return n.path
		}
		for _, next := range g[n.pkg] {
			if !seen[next] {
				seen[next] = true
				queue = append(queue, node{next, append(append([]string{}, n.path...), next)})
			}
		}
	}
	return []string{target}
}

// buildGraph walks the repository and parses the repro imports of every
// non-test Go file, keyed by package path.
func buildGraph(root string) (graph, error) {
	g := graph{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == ".git" || name == "testdata" || (name != "." && strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		pkg := module
		if rel != "." {
			pkg = module + "/" + filepath.ToSlash(rel)
		}
		for _, imp := range f.Imports {
			v, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return err
			}
			if v != module && !strings.HasPrefix(v, module+"/") {
				continue
			}
			if !contains(g[pkg], v) {
				g[pkg] = append(g[pkg], v)
			}
		}
		if _, ok := g[pkg]; !ok {
			g[pkg] = nil
		}
		return nil
	})
	return g, err
}

// contains reports whether the slice already holds the string.
func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
