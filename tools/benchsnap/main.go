// Command benchsnap captures a machine-readable benchmark snapshot: it
// runs the repository's Go benchmarks (`go test -bench`), parses the
// standard benchmark output — including custom per-op metrics like
// "cycles" and "candidates" — and writes one schema-versioned JSON
// document dashboards and regression tooling can diff across commits
// without re-parsing `go test` text.
//
// Usage:
//
//	go run ./tools/benchsnap -out BENCH_v6.json                 refresh the committed snapshot
//	go run ./tools/benchsnap -bench 'Enumerate' -out /tmp/b.json   a subset
//	go run ./tools/benchsnap -check BENCH_v6.json               validate a snapshot (CI smoke)
//	go run ./tools/benchsnap -compare -match 'Enumerate|Verdict' -threshold 1.25 old.json new.json
//
// The default benchmark set covers the hot paths the paper's evaluation
// leans on: trace enumeration (materialized, streamed and parallel),
// model-checking verdicts, and the TSO simulator. `-benchtime 1x` is the
// default so a snapshot stays cheap enough for CI; raise it locally when
// the numbers themselves matter. The snapshot records the environment
// (Go version, GOOS/GOARCH, CPU count) because benchmark numbers are
// only comparable within one environment.
//
// -check parses an existing snapshot and fails unless the schema version
// matches, the benchmark list is non-empty and every entry carries a
// positive ns/op — the shape the smoke job pins so the format cannot
// drift silently.
//
// -compare diffs two snapshots (old, then new) benchmark by benchmark
// and fails when any benchmark selected by -match regressed: new ns/op
// more than -threshold times old ns/op. Snapshots taken with -benchtime
// 1x are noisy, so the default threshold is a deliberately generous
// 1.25×; the gate is for order-of-magnitude regressions (a lost
// optimization), not micro-drift.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// SchemaVersion identifies the snapshot format; bump it on any
// incompatible change to the JSON shape.
const SchemaVersion = 1

// Kind tags the document so consumers can reject unrelated JSON files.
const Kind = "rmwtso-bench"

// Snapshot is the whole benchmark document.
type Snapshot struct {
	SchemaVersion int    `json:"schema_version"`
	Kind          string `json:"kind"`
	// Environment the numbers were taken in.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	CPUModel  string `json:"cpu_model,omitempty"`
	// The exact selection the snapshot ran.
	Bench      string      `json:"bench"`
	Benchtime  string      `json:"benchtime"`
	Packages   []string    `json:"packages"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Package    string  `json:"package"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp come from -benchmem.
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics carries the benchmark's custom ReportMetric values keyed by
	// unit (e.g. "cycles", "candidates", "trace-memops").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	var (
		out       = flag.String("out", "BENCH_v6.json", "write the snapshot to this file (- for stdout)")
		bench     = flag.String("bench", "Enumerate|Verdict|Sim", "benchmark name regex passed to go test -bench")
		benchtime = flag.String("benchtime", "1x", "go test -benchtime value")
		pkgs      = flag.String("pkg", ".", "comma-separated packages to benchmark")
		checkPath = flag.String("check", "", "validate this snapshot file instead of running benchmarks")
		compare   = flag.Bool("compare", false, "compare two snapshot files (old new) instead of running benchmarks")
		match     = flag.String("match", "", "with -compare: only compare benchmarks whose name matches this regex (default: all)")
		threshold = flag.Float64("threshold", 1.25, "with -compare: fail when new ns/op exceeds old ns/op by more than this factor")
	)
	flag.Parse()

	if *checkPath != "" {
		if err := checkSnapshot(*checkPath); err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		return
	}
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchsnap: -compare needs exactly two snapshot files: old new")
			os.Exit(2)
		}
		if err := compareSnapshots(flag.Arg(0), flag.Arg(1), *match, *threshold); err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		return
	}

	snap, err := capture(*bench, *benchtime, strings.Split(*pkgs, ","))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchsnap: %d benchmarks -> %s\n", len(snap.Benchmarks), *out)
}

// capture runs the selected benchmarks once per package and parses the
// output into a Snapshot.
func capture(bench, benchtime string, pkgs []string) (*Snapshot, error) {
	snap := &Snapshot{
		SchemaVersion: SchemaVersion,
		Kind:          Kind,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
		Bench:         bench,
		Benchtime:     benchtime,
		Packages:      pkgs,
	}
	for _, pkg := range pkgs {
		pkg = strings.TrimSpace(pkg)
		if pkg == "" {
			continue
		}
		cmd := exec.Command("go", "test", "-run", "^$", "-bench", bench, "-benchtime", benchtime, "-benchmem", pkg)
		outBytes, err := cmd.CombinedOutput()
		if err != nil {
			return nil, fmt.Errorf("go test -bench in %s: %v\n%s", pkg, err, outBytes)
		}
		results, cpu, err := parseBenchOutput(string(outBytes))
		if err != nil {
			return nil, fmt.Errorf("parsing %s benchmark output: %w", pkg, err)
		}
		if snap.CPUModel == "" {
			snap.CPUModel = cpu
		}
		snap.Benchmarks = append(snap.Benchmarks, results...)
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmarks matched -bench %q in %s", bench, strings.Join(pkgs, ","))
	}
	return snap, nil
}

// parseBenchOutput decodes `go test -bench` text: "pkg:"/"cpu:" headers
// and one "Benchmark<Name>-N  iters  value unit ..." line per result.
func parseBenchOutput(out string) ([]Benchmark, string, error) {
	var results []Benchmark
	pkg, cpu := "", ""
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			return nil, "", fmt.Errorf("malformed benchmark line %q", line)
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, "", fmt.Errorf("iterations in %q: %w", line, err)
		}
		b := Benchmark{Name: fields[0], Package: pkg, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			value, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, "", fmt.Errorf("metric value in %q: %w", line, err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = value
			case "B/op":
				b.BytesPerOp = value
			case "allocs/op":
				b.AllocsPerOp = value
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[strings.TrimSuffix(unit, "/op")] = value
			}
		}
		results = append(results, b)
	}
	return results, cpu, nil
}

// readSnapshot loads and shape-validates one snapshot file.
func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if snap.SchemaVersion != SchemaVersion || snap.Kind != Kind {
		return nil, fmt.Errorf("%s: schema %d kind %q, want schema %d kind %q",
			path, snap.SchemaVersion, snap.Kind, SchemaVersion, Kind)
	}
	if len(snap.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: snapshot has no benchmarks", path)
	}
	for _, b := range snap.Benchmarks {
		if !strings.HasPrefix(b.Name, "Benchmark") || b.NsPerOp <= 0 || b.Iterations <= 0 {
			return nil, fmt.Errorf("%s: implausible entry %+v", path, b)
		}
	}
	return &snap, nil
}

// checkSnapshot validates the shape CI pins: correct schema tag, a
// non-empty benchmark list, and a positive ns/op on every entry.
func checkSnapshot(path string) error {
	snap, err := readSnapshot(path)
	if err != nil {
		return err
	}
	fmt.Printf("benchsnap: %s ok: %d benchmarks, %s %s/%s (%d cpus)\n",
		path, len(snap.Benchmarks), snap.GoVersion, snap.GOOS, snap.GOARCH, snap.CPUs)
	return nil
}

// compareSnapshots diffs the benchmarks two snapshots share (optionally
// restricted by a name regex) and fails when any of them regressed in
// ns/op past the threshold factor. Benchmarks present in only one
// snapshot are skipped: the gate guards retained benchmarks, renames are
// caught by requiring at least one comparable pair.
func compareSnapshots(oldPath, newPath, match string, threshold float64) error {
	var re *regexp.Regexp
	if match != "" {
		var err error
		if re, err = regexp.Compile(match); err != nil {
			return fmt.Errorf("-match: %w", err)
		}
	}
	oldSnap, err := readSnapshot(oldPath)
	if err != nil {
		return err
	}
	newSnap, err := readSnapshot(newPath)
	if err != nil {
		return err
	}
	oldByName := make(map[string]Benchmark, len(oldSnap.Benchmarks))
	for _, b := range oldSnap.Benchmarks {
		oldByName[b.Name] = b
	}
	compared, regressed := 0, 0
	for _, nb := range newSnap.Benchmarks {
		if re != nil && !re.MatchString(nb.Name) {
			continue
		}
		ob, ok := oldByName[nb.Name]
		if !ok {
			continue
		}
		compared++
		ratio := nb.NsPerOp / ob.NsPerOp
		status := "ok"
		if ratio > threshold {
			status = "REGRESSED"
			regressed++
		}
		fmt.Printf("benchsnap: %-60s %14.0f -> %14.0f ns/op (%.2fx) %s\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp, ratio, status)
	}
	if compared == 0 {
		return fmt.Errorf("no benchmark appears in both %s and %s (match %q)", oldPath, newPath, match)
	}
	if regressed > 0 {
		return fmt.Errorf("%d of %d benchmarks regressed past %.2fx (%s -> %s)",
			regressed, compared, threshold, oldPath, newPath)
	}
	fmt.Printf("benchsnap: %d benchmarks within %.2fx (%s -> %s)\n", compared, threshold, oldPath, newPath)
	return nil
}
