// Command doclint enforces godoc coverage: every exported identifier in
// the given package trees must carry a doc comment. It exists so CI can
// fail when the public API surface (pkg/...) or the documented internal
// layers drift out of sync with their documentation; it deliberately uses
// only the standard library so the repository stays dependency-free.
//
// Usage:
//
//	go run ./tools/doclint ./pkg/... ./internal/workload/...
//
// Each argument is a directory, optionally with the go-style /... suffix
// for a recursive walk. Test files (_test.go) are exempt. For grouped
// declarations a doc comment on the group covers every name in it, the
// same rule godoc itself renders by.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <dir>[/...] ...")
		os.Exit(2)
	}
	var missing []string
	for _, arg := range os.Args[1:] {
		dirs, err := expand(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
		for _, dir := range dirs {
			found, err := lintDir(dir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "doclint:", err)
				os.Exit(2)
			}
			missing = append(missing, found...)
		}
	}
	if len(missing) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d exported identifiers without doc comments:\n", len(missing))
		for _, m := range missing {
			fmt.Fprintln(os.Stderr, " ", m)
		}
		os.Exit(1)
	}
}

// expand turns an argument into the list of directories to lint: the
// directory itself, plus every subdirectory when the /... suffix is used.
func expand(arg string) ([]string, error) {
	recursive := false
	if strings.HasSuffix(arg, "/...") {
		recursive = true
		arg = strings.TrimSuffix(arg, "/...")
	}
	info, err := os.Stat(arg)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("%s is not a directory", arg)
	}
	if !recursive {
		return []string{arg}, nil
	}
	var dirs []string
	err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		// Match the go tool's /... semantics: testdata and "."/"_"
		// prefixed directories are not packages.
		name := d.Name()
		if path != arg && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// lintDir parses one directory's non-test Go files and returns a
// "file:line: identifier" entry for each undocumented exported identifier.
func lintDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var missing []string
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		missing = append(missing, lintFile(fset, file)...)
	}
	return missing, nil
}

// lintFile checks one parsed file's top-level declarations.
func lintFile(fset *token.FileSet, file *ast.File) []string {
	var missing []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s %s", p.Filename, p.Line, what, name))
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !ast.IsExported(d.Name.Name) || !exportedReceiver(d) {
				continue
			}
			if d.Doc == nil {
				what := "func"
				if d.Recv != nil {
					what = "method"
				}
				report(d.Pos(), what, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if ast.IsExported(s.Name.Name) && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					// A doc comment on the const/var block covers its
					// members, matching how godoc renders groups.
					if d.Doc != nil || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if ast.IsExported(n.Name) {
							report(n.Pos(), kindOf(d.Tok), n.Name)
						}
					}
				}
			}
		}
	}
	return missing
}

// exportedReceiver reports whether a declaration is package-level or a
// method on an exported type; methods of unexported types are not part of
// the documented surface.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr: // generic receiver
			t = v.X
		case *ast.Ident:
			return ast.IsExported(v.Name)
		default:
			return true
		}
	}
}

// kindOf names a GenDecl token for the report.
func kindOf(tok token.Token) string {
	switch tok {
	case token.CONST:
		return "const"
	case token.VAR:
		return "var"
	default:
		return tok.String()
	}
}
